//! The ARP cache.
//!
//! Like routes, ARP mappings are shared metastate (§3.3): the server's
//! cache is authoritative (it answers ARP queries from the wire and
//! issues requests); library stacks hold cached entries obtained from
//! the server at session-migration time or via a resolver upcall, and
//! the server invalidates them through callbacks as entries expire or
//! change.
//!
//! Packets addressed to an unresolved next hop queue on the cache (one
//! small queue per address, as in BSD `arpresolve`) and drain when the
//! reply arrives.

use psd_sim::SimTime;
use psd_wire::EtherAddr;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Default entry lifetime (BSD used 20 minutes).
pub const ARP_TTL: SimTime = SimTime::from_secs(20 * 60);

/// Maximum packets queued awaiting resolution of one address.
pub const ARP_MAXQUEUE: usize = 8;

/// Minimum spacing between ARP requests for one address (BSD re-sends
/// at most once per second while packets wait).
pub const ARP_RETRY: SimTime = SimTime::from_secs(1);

#[derive(Debug)]
struct Entry {
    mac: EtherAddr,
    expires: SimTime,
}

/// The cache.
#[derive(Debug, Default)]
pub struct ArpCache {
    entries: HashMap<Ipv4Addr, Entry>,
    pending: HashMap<Ipv4Addr, Vec<Vec<u8>>>,
    last_request: HashMap<Ipv4Addr, SimTime>,
    version: u64,
}

impl ArpCache {
    /// An empty cache.
    pub fn new() -> ArpCache {
        ArpCache::default()
    }

    /// Looks up a live entry.
    pub fn lookup(&self, ip: Ipv4Addr, now: SimTime) -> Option<EtherAddr> {
        self.entries
            .get(&ip)
            .filter(|e| e.expires > now)
            .map(|e| e.mac)
    }

    /// Inserts or refreshes an entry, returning any packets that were
    /// waiting for it.
    pub fn insert(&mut self, ip: Ipv4Addr, mac: EtherAddr, now: SimTime) -> Vec<Vec<u8>> {
        self.entries.insert(
            ip,
            Entry {
                mac,
                expires: now + ARP_TTL,
            },
        );
        self.version += 1;
        self.pending.remove(&ip).unwrap_or_default()
    }

    /// Removes an entry (expiry or administrative change). Returns true
    /// if it existed.
    pub fn invalidate(&mut self, ip: Ipv4Addr) -> bool {
        let existed = self.entries.remove(&ip).is_some();
        if existed {
            self.version += 1;
        }
        existed
    }

    /// Queues a packet awaiting resolution of `ip`. Returns `true` if
    /// this is the *first* packet queued (i.e. the caller should send an
    /// ARP request), `false` otherwise. The queue is bounded; overflow
    /// drops the oldest packet, as BSD does.
    pub fn enqueue_pending(&mut self, ip: Ipv4Addr, frame: Vec<u8>) -> bool {
        let q = self.pending.entry(ip).or_default();
        let first = q.is_empty();
        if q.len() >= ARP_MAXQUEUE {
            q.remove(0);
        }
        q.push(frame);
        first
    }

    /// Number of packets waiting on `ip`.
    pub fn pending_len(&self, ip: Ipv4Addr) -> usize {
        self.pending.get(&ip).map_or(0, Vec::len)
    }

    /// True if an ARP request should go out for `ip` now — either no
    /// request was ever sent, or the last one is at least [`ARP_RETRY`]
    /// old (so lost requests are retried whenever queued traffic
    /// prompts resolution again). Records the request time.
    pub fn request_due(&mut self, ip: Ipv4Addr, now: SimTime) -> bool {
        let due = self
            .last_request
            .get(&ip)
            .is_none_or(|last| now >= *last + ARP_RETRY);
        if due {
            self.last_request.insert(ip, now);
        }
        due
    }

    /// Version counter bumped on every change, for cache coherence.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Live entries, for snapshotting into an application cache at
    /// session-migration time.
    pub fn snapshot(&self, now: SimTime) -> Vec<(Ipv4Addr, EtherAddr)> {
        self.entries
            .iter()
            .filter(|(_, e)| e.expires > now)
            .map(|(ip, e)| (*ip, e.mac))
            .collect()
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn insert_lookup_roundtrip() {
        let mut c = ArpCache::new();
        let now = SimTime::ZERO;
        c.insert(ip("10.0.0.2"), EtherAddr::local(2), now);
        assert_eq!(c.lookup(ip("10.0.0.2"), now), Some(EtherAddr::local(2)));
        assert_eq!(c.lookup(ip("10.0.0.3"), now), None);
    }

    #[test]
    fn entries_expire() {
        let mut c = ArpCache::new();
        c.insert(ip("10.0.0.2"), EtherAddr::local(2), SimTime::ZERO);
        assert!(c
            .lookup(ip("10.0.0.2"), ARP_TTL - SimTime::from_secs(1))
            .is_some());
        assert!(c.lookup(ip("10.0.0.2"), ARP_TTL).is_none());
    }

    #[test]
    fn pending_queue_drains_on_insert() {
        let mut c = ArpCache::new();
        assert!(c.enqueue_pending(ip("10.0.0.2"), vec![1]));
        assert!(!c.enqueue_pending(ip("10.0.0.2"), vec![2]));
        assert_eq!(c.pending_len(ip("10.0.0.2")), 2);
        let drained = c.insert(ip("10.0.0.2"), EtherAddr::local(2), SimTime::ZERO);
        assert_eq!(drained, vec![vec![1], vec![2]]);
        assert_eq!(c.pending_len(ip("10.0.0.2")), 0);
    }

    #[test]
    fn pending_queue_bounded() {
        let mut c = ArpCache::new();
        for i in 0..20u8 {
            c.enqueue_pending(ip("10.0.0.2"), vec![i]);
        }
        assert_eq!(c.pending_len(ip("10.0.0.2")), ARP_MAXQUEUE);
        let drained = c.insert(ip("10.0.0.2"), EtherAddr::local(2), SimTime::ZERO);
        // The oldest were dropped; the newest survive.
        assert_eq!(drained.last(), Some(&vec![19u8]));
        assert_eq!(drained.len(), ARP_MAXQUEUE);
    }

    #[test]
    fn invalidate_bumps_version() {
        let mut c = ArpCache::new();
        c.insert(ip("10.0.0.2"), EtherAddr::local(2), SimTime::ZERO);
        let v = c.version();
        assert!(c.invalidate(ip("10.0.0.2")));
        assert!(c.version() > v);
        assert!(!c.invalidate(ip("10.0.0.2")));
        assert!(c.lookup(ip("10.0.0.2"), SimTime::ZERO).is_none());
    }

    #[test]
    fn request_pacing_allows_retries() {
        let mut c = ArpCache::new();
        let t0 = SimTime::from_millis(5);
        assert!(c.request_due(ip("10.0.0.2"), t0), "first request goes out");
        assert!(
            !c.request_due(ip("10.0.0.2"), t0 + SimTime::from_millis(500)),
            "paced within the retry window"
        );
        assert!(
            c.request_due(ip("10.0.0.2"), t0 + ARP_RETRY),
            "a lost request is retried after the window"
        );
        // Other addresses are independent.
        assert!(c.request_due(ip("10.0.0.3"), t0));
    }

    #[test]
    fn snapshot_excludes_expired() {
        let mut c = ArpCache::new();
        c.insert(ip("10.0.0.2"), EtherAddr::local(2), SimTime::ZERO);
        c.insert(
            ip("10.0.0.3"),
            EtherAddr::local(3),
            SimTime::from_secs(1200),
        );
        let snap = c.snapshot(ARP_TTL + SimTime::from_secs(1));
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].0, ip("10.0.0.3"));
    }
}
