//! TCP (RFC 793 with the BSD Net2 congestion machinery).
//!
//! [`Tcb`] is a *pure* transmission control block: it holds the
//! connection state, sequence spaces, socket buffers, reassembly queue,
//! RTT estimator and congestion window, and its methods return
//! [`TcpAction`]s — segments to emit, timers to arm or cancel, events
//! to deliver — rather than performing I/O. The surrounding
//! [`NetStack`](crate::stack::NetStack) turns actions into real
//! checksummed segments and simulator timers. Keeping the TCB pure
//! makes the whole state machine unit-testable (two TCBs can be wired
//! back-to-back in a test without any simulator) and is what lets a
//! session *migrate*: [`Tcb::export`]/[`Tcb::import`] capture and
//! restore the complete connection state when a session moves between
//! the operating system server and an application (§3.1).
//!
//! Implemented: three-way handshake (active and passive), sliding
//! window with receiver advertisement, out-of-order reassembly,
//! retransmission with Jacobson/Karn RTT estimation and exponential
//! backoff, slow start and congestion avoidance, fast retransmit and
//! fast recovery on duplicate ACKs, delayed ACKs, Nagle's algorithm
//! (switchable — `TCP_NODELAY`), zero-window persist probes, urgent
//! data pointers, the full close sequence (four-way handshake,
//! `TIME_WAIT` with 2MSL), and RST generation/processing.

use crate::socket::SocketError;
use crate::InetAddr;
use psd_mbuf::{MbufChain, SockBuf};
use psd_sim::SimTime;
use psd_wire::{TcpFlags, TcpHeader};

/// Default maximum segment size on local Ethernet (1500 − 20 − 20).
pub const DEFAULT_MSS: u16 = 1460;

/// 2MSL: how long `TIME_WAIT` lingers (2 × 30 s, as in BSD).
pub const MSL_2: SimTime = SimTime::from_secs(60);

/// Delayed-ACK interval (the BSD 200 ms fast timer).
pub const DELACK: SimTime = SimTime::from_millis(200);

/// Minimum retransmission timeout.
pub const RTO_MIN: SimTime = SimTime::from_millis(500);

/// Maximum retransmission timeout.
pub const RTO_MAX: SimTime = SimTime::from_secs(64);

/// Initial retransmission timeout before any RTT sample.
pub const RTO_INIT: SimTime = SimTime::from_secs(1);

/// Retransmissions before giving up (BSD `TCP_MAXRXTSHIFT` is 12; a
/// smaller bound keeps failure tests quick while preserving backoff).
pub const MAX_RXT: u32 = 8;

/// Duplicate-ACK threshold for fast retransmit.
pub const REXMT_THRESH: u32 = 3;

/// Largest window advertisement (no window scaling in 1993).
pub const MAX_WINDOW: u32 = 65_535;

/// Sequence-space comparison: `a < b` modulo 2³².
pub fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// Sequence-space comparison: `a ≤ b` modulo 2³².
pub fn seq_le(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) <= 0
}

/// Sequence-space comparison: `a > b` modulo 2³².
pub fn seq_gt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) > 0
}

/// Sequence-space comparison: `a ≥ b` modulo 2³².
pub fn seq_ge(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) >= 0
}

/// RFC 793 connection states.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TcpState {
    /// No connection.
    Closed,
    /// Active open sent a SYN.
    SynSent,
    /// Passive open received a SYN and answered SYN|ACK.
    SynReceived,
    /// Connection open, data flows.
    Established,
    /// Received FIN; local side may still send.
    CloseWait,
    /// Sent FIN, awaiting its ACK (and the peer's FIN).
    FinWait1,
    /// FIN acknowledged, awaiting the peer's FIN.
    FinWait2,
    /// Both sides sent FIN simultaneously.
    Closing,
    /// FIN sent after CloseWait, awaiting its ACK.
    LastAck,
    /// Connection done; lingering 2MSL for stray segments.
    TimeWait,
}

impl TcpState {
    /// True once the three-way handshake has completed.
    pub fn is_synchronized(self) -> bool {
        !matches!(
            self,
            TcpState::Closed | TcpState::SynSent | TcpState::SynReceived
        )
    }

    /// True when the local side may still queue data to send.
    pub fn can_send(self) -> bool {
        matches!(
            self,
            TcpState::Established | TcpState::CloseWait | TcpState::SynSent | TcpState::SynReceived
        )
    }
}

/// TCP timers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TcpTimer {
    /// Retransmission.
    Rexmt,
    /// Zero-window probe.
    Persist,
    /// Delayed ACK.
    DelAck,
    /// 2MSL TIME_WAIT expiry.
    TwoMsl,
}

/// A segment the TCB wants transmitted. The stack adds checksums and
/// the IP/Ethernet encapsulation.
#[derive(Debug)]
pub struct SegmentSpec {
    /// Source/destination of the segment.
    pub local: InetAddr,
    /// Remote endpoint.
    pub remote: InetAddr,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (valid when ACK flag set).
    pub ack: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Advertised window.
    pub wnd: u16,
    /// Urgent pointer.
    pub urp: u16,
    /// MSS option (SYN segments).
    pub mss: Option<u16>,
    /// Payload (cluster-sharing copy from the send buffer).
    pub data: MbufChain,
    /// True if this is a retransmission (for stats and Karn's rule —
    /// already applied internally — and so the stack can count it).
    pub rexmit: bool,
}

impl SegmentSpec {
    /// The TCP header for this segment.
    pub fn header(&self) -> TcpHeader {
        TcpHeader {
            src_port: self.local.port,
            dst_port: self.remote.port,
            seq: self.seq,
            ack: self.ack,
            flags: self.flags,
            window: self.wnd,
            urgent: self.urp,
            mss: self.mss,
        }
    }
}

/// What the TCB asks its driver to do.
#[derive(Debug)]
pub enum TcpAction {
    /// Transmit a segment.
    Send(SegmentSpec),
    /// New in-order data was queued: notify readers. `wake` is true
    /// when the receive queue was empty before this segment — only then
    /// is a blocked reader actually woken (BSD's `sowakeup` on a
    /// non-empty queue finds the reader already runnable and costs
    /// nothing).
    Deliver {
        /// True if a blocked reader must be woken.
        wake: bool,
    },
    /// Send-buffer space was freed: notify writers.
    WakeWriters,
    /// The active open completed.
    Connected,
    /// The peer sent FIN: no more data will arrive.
    PeerClosed,
    /// The connection failed.
    Fail(SocketError),
    /// Arm (or re-arm) a timer to fire after the given delay.
    SetTimer(TcpTimer, SimTime),
    /// Cancel a timer.
    CancelTimer(TcpTimer),
    /// The TCB is finished and may be deallocated.
    Free,
}

/// Serialized connection state — the migration capsule of §3.1. "The
/// call also returns a local endpoint, a remote endpoint, the
/// connection state variables, and a packet filter port."
#[derive(Debug, Clone)]
pub struct TcbSnapshot {
    /// Connection state.
    pub state: TcpState,
    /// Local endpoint.
    pub local: InetAddr,
    /// Remote endpoint.
    pub remote: InetAddr,
    /// Send sequence variables: (iss, una, nxt, max, wnd, wl1, wl2, up).
    pub snd: (u32, u32, u32, u32, u32, u32, u32, u32),
    /// Receive sequence variables: (irs, nxt, adv, up).
    pub rcv: (u32, u32, u32, u32),
    /// Congestion state: (cwnd, ssthresh).
    pub congestion: (u32, u32),
    /// RTT estimator: (srtt_ns, rttvar_ns, has_estimate).
    pub rtt: (u64, u64, bool),
    /// MSS in force.
    pub mss: u16,
    /// Unacknowledged/unsent bytes on the send queue.
    pub snd_data: Vec<u8>,
    /// Undelivered bytes on the receive queue.
    pub rcv_data: Vec<u8>,
    /// Out-of-order segments (seq, bytes).
    pub reass: Vec<(u32, Vec<u8>)>,
    /// Buffer limits: (snd_hiwat, rcv_hiwat).
    pub hiwat: (usize, usize),
    /// Nagle disabled?
    pub nodelay: bool,
    /// FIN already received from peer?
    pub fin_rcvd: bool,
}

/// The transmission control block.
#[derive(Debug)]
pub struct Tcb {
    /// Connection state.
    pub state: TcpState,
    /// Local endpoint.
    pub local: InetAddr,
    /// Remote endpoint.
    pub remote: InetAddr,

    // Send sequence space.
    iss: u32,
    snd_una: u32,
    snd_nxt: u32,
    snd_max: u32,
    snd_wnd: u32,
    snd_wl1: u32,
    snd_wl2: u32,
    snd_up: u32,

    // Receive sequence space.
    irs: u32,
    rcv_nxt: u32,
    rcv_adv: u32,
    rcv_up: u32,

    // Buffers.
    /// Send socket buffer (holds unacknowledged + unsent data).
    pub snd_buf: SockBuf,
    /// Receive socket buffer (in-order data awaiting the application).
    pub rcv_buf: SockBuf,
    reass: Vec<(u32, Vec<u8>)>,

    // Congestion control.
    cwnd: u32,
    ssthresh: u32,
    dupacks: u32,

    // RTT estimation (Jacobson), in nanoseconds.
    srtt: u64,
    rttvar: u64,
    rtt_valid: bool,
    /// Outstanding measurement: sequence being timed and its start.
    rtt_probe: Option<(u32, SimTime)>,
    rxtshift: u32,

    /// Negotiated maximum segment size.
    pub mss: u16,
    /// Nagle disabled (`TCP_NODELAY`).
    pub nodelay: bool,

    delack_pending: bool,
    fin_sent_seq: Option<u32>,
    fin_rcvd: bool,
    /// Terminal error, sticky once set.
    pub error: Option<SocketError>,
    rexmt_armed: bool,
    persist_armed: bool,
    persist_shift: u32,

    // Statistics.
    /// Segments retransmitted.
    pub rexmt_segs: u64,
    /// Fast retransmits triggered.
    pub fast_rexmts: u64,
}

impl Tcb {
    /// Creates a closed TCB with the given buffer limits.
    pub fn new(local: InetAddr, remote: InetAddr, snd_hiwat: usize, rcv_hiwat: usize) -> Tcb {
        Tcb {
            state: TcpState::Closed,
            local,
            remote,
            iss: 0,
            snd_una: 0,
            snd_nxt: 0,
            snd_max: 0,
            snd_wnd: 0,
            snd_wl1: 0,
            snd_wl2: 0,
            snd_up: 0,
            irs: 0,
            rcv_nxt: 0,
            rcv_adv: 0,
            rcv_up: 0,
            snd_buf: SockBuf::new(snd_hiwat),
            rcv_buf: SockBuf::new(rcv_hiwat),
            reass: Vec::new(),
            cwnd: u32::from(DEFAULT_MSS),
            ssthresh: MAX_WINDOW,
            dupacks: 0,
            srtt: 0,
            rttvar: 0,
            rtt_valid: false,
            rtt_probe: None,
            rxtshift: 0,
            mss: DEFAULT_MSS,
            nodelay: false,
            delack_pending: false,
            fin_sent_seq: None,
            fin_rcvd: false,
            error: None,
            rexmt_armed: false,
            persist_armed: false,
            persist_shift: 0,
            rexmt_segs: 0,
            fast_rexmts: 0,
        }
    }

    // --- Accessors used by the stack and tests ---

    /// Receive window currently advertisable.
    fn rcv_wnd(&self) -> u32 {
        (self.rcv_buf.space() as u32).min(MAX_WINDOW)
    }

    /// Bytes of in-order data available to the application.
    pub fn readable(&self) -> usize {
        self.rcv_buf.len()
    }

    /// Send-buffer space available to the application.
    pub fn writable(&self) -> usize {
        self.snd_buf.space()
    }

    /// True if the peer has closed and all data has been read.
    pub fn at_eof(&self) -> bool {
        self.fin_rcvd && self.rcv_buf.is_empty()
    }

    /// The retransmission timeout currently in force.
    pub fn rto(&self) -> SimTime {
        let base = if self.rtt_valid {
            SimTime::from_nanos(self.srtt + 4 * self.rttvar)
        } else {
            RTO_INIT
        };
        let backed = base * (1u64 << self.rxtshift.min(16));
        backed.max(RTO_MIN).min(RTO_MAX)
    }

    /// Smoothed RTT estimate, if one exists.
    pub fn srtt(&self) -> Option<SimTime> {
        self.rtt_valid.then(|| SimTime::from_nanos(self.srtt))
    }

    /// Current congestion window (for tests/benchmarks).
    pub fn cwnd(&self) -> u32 {
        self.cwnd
    }

    /// Current slow-start threshold (for tests/benchmarks).
    pub fn ssthresh(&self) -> u32 {
        self.ssthresh
    }

    // --- Opens ---

    /// Active open: send SYN (stack supplies the ISS).
    pub fn connect(&mut self, iss: u32) -> Vec<TcpAction> {
        assert_eq!(self.state, TcpState::Closed, "connect on non-closed TCB");
        self.iss = iss;
        self.snd_una = iss;
        self.snd_nxt = iss;
        self.snd_max = iss;
        self.state = TcpState::SynSent;
        let mut actions = vec![TcpAction::Send(SegmentSpec {
            local: self.local,
            remote: self.remote,
            seq: iss,
            ack: 0,
            flags: TcpFlags::SYN,
            wnd: self.rcv_wnd() as u16,
            urp: 0,
            mss: Some(self.mss),
            data: MbufChain::new(),
            rexmit: false,
        })];
        self.snd_nxt = iss.wrapping_add(1);
        self.snd_max = self.snd_nxt;
        actions.push(TcpAction::SetTimer(TcpTimer::Rexmt, self.rto()));
        self.rexmt_armed = true;
        actions
    }

    /// Passive open: build a TCB in `SynReceived` answering `syn` (the
    /// listener's driver calls this for each new connection request).
    #[allow(clippy::too_many_arguments)] // The SYN's fields plus buffer limits; a struct would obscure RFC 793's names.
    pub fn accept_syn(
        local: InetAddr,
        remote: InetAddr,
        iss: u32,
        syn_seq: u32,
        syn_mss: Option<u16>,
        syn_wnd: u16,
        snd_hiwat: usize,
        rcv_hiwat: usize,
    ) -> (Tcb, Vec<TcpAction>) {
        let mut tcb = Tcb::new(local, remote, snd_hiwat, rcv_hiwat);
        tcb.state = TcpState::SynReceived;
        tcb.irs = syn_seq;
        tcb.rcv_nxt = syn_seq.wrapping_add(1);
        tcb.rcv_adv = tcb.rcv_nxt.wrapping_add(tcb.rcv_wnd());
        tcb.iss = iss;
        tcb.snd_una = iss;
        tcb.snd_nxt = iss.wrapping_add(1);
        tcb.snd_max = tcb.snd_nxt;
        tcb.snd_wnd = u32::from(syn_wnd);
        tcb.snd_wl1 = syn_seq;
        tcb.snd_wl2 = iss;
        if let Some(m) = syn_mss {
            tcb.mss = tcb.mss.min(m);
        }
        tcb.cwnd = u32::from(tcb.mss);
        let actions = vec![
            TcpAction::Send(SegmentSpec {
                local,
                remote,
                seq: iss,
                ack: tcb.rcv_nxt,
                flags: TcpFlags::SYN | TcpFlags::ACK,
                wnd: tcb.rcv_wnd() as u16,
                urp: 0,
                mss: Some(tcb.mss),
                data: MbufChain::new(),
                rexmit: false,
            }),
            TcpAction::SetTimer(TcpTimer::Rexmt, tcb.rto()),
        ];
        tcb.rexmt_armed = true;
        (tcb, actions)
    }

    // --- Application send/receive ---

    /// Queues data for transmission; returns bytes accepted (bounded by
    /// send-buffer space). `copy_rate_charged_by_caller`: the caller
    /// performs and charges the copy into the socket buffer.
    pub fn send(
        &mut self,
        data: &[u8],
        now: SimTime,
    ) -> Result<(usize, Vec<TcpAction>), SocketError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if !self.state.can_send() {
            return Err(if self.state == TcpState::Closed {
                SocketError::NotConnected
            } else {
                SocketError::Shutdown
            });
        }
        let take = data.len().min(self.snd_buf.space());
        if take == 0 {
            return Err(SocketError::WouldBlock);
        }
        self.snd_buf.append(MbufChain::from_slice(&data[..take]));
        let actions = self.output(now, false);
        Ok((take, actions))
    }

    /// Queues data whose last byte is urgent, setting the urgent
    /// pointer *before* transmission so outgoing segments carry URG.
    pub fn send_urgent(
        &mut self,
        data: &[u8],
        now: SimTime,
    ) -> Result<(usize, Vec<TcpAction>), SocketError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        if !self.state.can_send() {
            return Err(if self.state == TcpState::Closed {
                SocketError::NotConnected
            } else {
                SocketError::Shutdown
            });
        }
        let take = data.len().min(self.snd_buf.space());
        if take == 0 {
            return Err(SocketError::WouldBlock);
        }
        self.snd_buf.append(MbufChain::from_slice(&data[..take]));
        self.snd_up = self.snd_una.wrapping_add(self.snd_buf.len() as u32);
        let actions = self.output(now, false);
        Ok((take, actions))
    }

    /// Copies up to `buf.len()` bytes of in-order data to the caller,
    /// consuming them. Returns bytes read and any window-update actions.
    pub fn recv(&mut self, buf: &mut [u8], now: SimTime) -> (usize, Vec<TcpAction>) {
        let n = buf.len().min(self.rcv_buf.len());
        if n > 0 {
            self.rcv_buf.peek(&mut buf[..n]);
            self.rcv_buf.drop_front(n);
        }
        let actions = if n > 0 {
            self.after_user_read(now)
        } else {
            Vec::new()
        };
        (n, actions)
    }

    /// Window-update check after the application consumed receive-queue
    /// data (by any interface — copyout or shared-buffer handoff): if
    /// consuming opened the window significantly (two segments or half
    /// the buffer), advertise it immediately — BSD's receiver
    /// silly-window avoidance.
    pub fn after_user_read(&mut self, now: SimTime) -> Vec<TcpAction> {
        let mut actions = Vec::new();
        if self.state.is_synchronized() {
            let new_wnd = self.rcv_wnd();
            let advertised = self.rcv_adv.wrapping_sub(self.rcv_nxt);
            let gain = new_wnd.saturating_sub(advertised);
            if gain >= 2 * u32::from(self.mss) || gain as usize * 2 >= self.rcv_buf.hiwat() {
                actions.extend(self.emit_ack(now));
            }
        }
        actions
    }

    // --- Output engine (tcp_output) ---

    /// Produces whatever segments the connection state allows. `force`
    /// is used by the persist timer to send a one-byte window probe.
    pub fn output(&mut self, now: SimTime, force: bool) -> Vec<TcpAction> {
        let mut actions = Vec::new();
        if matches!(self.state, TcpState::Closed | TcpState::TimeWait) {
            return actions;
        }
        if !self.state.is_synchronized() {
            // SYN already sent and timed; data waits for ESTABLISHED.
            return actions;
        }
        loop {
            let off = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
            let in_queue = self.snd_buf.len();
            let wnd = self.snd_wnd.min(self.cwnd) as usize;
            let mut len = in_queue.saturating_sub(off).min(wnd.saturating_sub(off));
            len = len.min(usize::from(self.mss));

            let fin_pending = self.fin_should_be_sent() && off + len >= in_queue;

            let mut send_now = false;
            if len > 0 {
                if len == usize::from(self.mss) {
                    send_now = true; // Full segment.
                } else if off + len >= in_queue && (self.nodelay || self.snd_nxt == self.snd_una) {
                    // All queued data fits and either Nagle is off or
                    // nothing is outstanding: send the runt.
                    send_now = true;
                } else if force {
                    send_now = true;
                }
            }
            let mut is_probe = false;
            if force && len == 0 && wnd == 0 && in_queue > off {
                // Zero-window probe: force one byte beyond the window.
                // The probe does not advance `snd_nxt` and is not timed
                // by the retransmission timer — the persist machinery
                // owns it (it can never be acknowledged while the
                // window stays closed, so REXMT would falsely drop the
                // connection).
                len = 1;
                send_now = true;
                is_probe = true;
            }
            let seq = self.snd_nxt;
            // The FIN occupies the sequence number one past the last
            // byte of the send queue. It is emitted exactly when this
            // segment ends at that point and `snd_nxt` has not already
            // passed it (first transmission or retransmission).
            let fin_target = fin_pending.then(|| {
                self.fin_sent_seq
                    .unwrap_or_else(|| self.snd_una.wrapping_add(in_queue as u32))
            });
            let send_fin = fin_target
                .is_some_and(|t| seq.wrapping_add(len as u32) == t && seq_le(self.snd_nxt, t));
            if !send_now && !send_fin {
                break;
            }

            let (data, _copied) = self.snd_buf.copy_range(off, len);
            let mut flags = TcpFlags::ACK;
            if len > 0 && off + len >= in_queue {
                flags = flags | TcpFlags::PSH;
            }
            if send_fin {
                flags = flags | TcpFlags::FIN;
                self.fin_sent_seq = Some(seq.wrapping_add(len as u32));
            }
            let mut urp = 0;
            if seq_gt(self.snd_up, seq) {
                let delta = self.snd_up.wrapping_sub(seq);
                if delta <= 0xFFFF {
                    flags = flags | TcpFlags::URG;
                    urp = delta as u16;
                }
            }
            let fin_bit = u32::from(flags.contains(TcpFlags::FIN));
            let mut advancing = false;
            if !is_probe {
                self.snd_nxt = seq.wrapping_add(len as u32 + fin_bit);
                advancing = seq_gt(self.snd_nxt, self.snd_max);
                if advancing {
                    self.snd_max = self.snd_nxt;
                    // Time this transmission if nothing is being timed.
                    if self.rtt_probe.is_none() && len > 0 {
                        self.rtt_probe = Some((seq, now));
                    }
                }
            }
            let wnd_adv = self.rcv_wnd();
            self.rcv_adv = self.rcv_nxt.wrapping_add(wnd_adv);
            if self.delack_pending {
                self.delack_pending = false;
                actions.push(TcpAction::CancelTimer(TcpTimer::DelAck));
            }
            actions.push(TcpAction::Send(SegmentSpec {
                local: self.local,
                remote: self.remote,
                seq,
                ack: self.rcv_nxt,
                flags,
                wnd: wnd_adv as u16,
                urp,
                mss: None,
                data,
                rexmit: !advancing,
            }));
            if (len > 0 || fin_bit != 0) && !self.rexmt_armed && !is_probe {
                self.rexmt_armed = true;
                actions.push(TcpAction::SetTimer(TcpTimer::Rexmt, self.rto()));
            }
            if self.persist_armed {
                self.persist_armed = false;
                self.persist_shift = 0;
                actions.push(TcpAction::CancelTimer(TcpTimer::Persist));
            }
            if force {
                break;
            }
            // Loop: more full segments may fit in the window.
            let off2 = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
            if off2 >= self.snd_buf.len() || off2 >= self.snd_wnd.min(self.cwnd) as usize {
                break;
            }
        }
        // If data waits but the window is zero and nothing is in
        // flight, start the persist timer.
        if self.snd_wnd == 0
            && self.snd_nxt == self.snd_una
            && !self.snd_buf.is_empty()
            && !self.persist_armed
            && self.state.is_synchronized()
        {
            self.persist_armed = true;
            actions.push(TcpAction::SetTimer(
                TcpTimer::Persist,
                self.persist_backoff(),
            ));
        }
        actions
    }

    fn fin_should_be_sent(&self) -> bool {
        matches!(
            self.state,
            TcpState::FinWait1 | TcpState::Closing | TcpState::LastAck
        )
    }

    fn persist_backoff(&self) -> SimTime {
        (RTO_MIN * (1u64 << self.persist_shift.min(6))).min(RTO_MAX)
    }

    fn emit_ack(&mut self, _now: SimTime) -> Vec<TcpAction> {
        let wnd = self.rcv_wnd();
        self.rcv_adv = self.rcv_nxt.wrapping_add(wnd);
        let mut actions = Vec::new();
        if self.delack_pending {
            self.delack_pending = false;
            actions.push(TcpAction::CancelTimer(TcpTimer::DelAck));
        }
        actions.push(TcpAction::Send(SegmentSpec {
            local: self.local,
            remote: self.remote,
            seq: self.snd_nxt,
            ack: self.rcv_nxt,
            flags: TcpFlags::ACK,
            wnd: wnd as u16,
            urp: 0,
            mss: None,
            data: MbufChain::new(),
            rexmit: false,
        }));
        actions
    }

    fn emit_rst(&self, seq: u32, ack: Option<u32>) -> TcpAction {
        TcpAction::Send(SegmentSpec {
            local: self.local,
            remote: self.remote,
            seq,
            ack: ack.unwrap_or(0),
            flags: if ack.is_some() {
                TcpFlags::RST | TcpFlags::ACK
            } else {
                TcpFlags::RST
            },
            wnd: 0,
            urp: 0,
            mss: None,
            data: MbufChain::new(),
            rexmit: false,
        })
    }

    // --- Input engine (tcp_input) ---

    /// Processes one arriving segment.
    pub fn input(&mut self, hdr: &TcpHeader, payload: &[u8], now: SimTime) -> Vec<TcpAction> {
        let mut actions = Vec::new();
        let flags = hdr.flags;

        match self.state {
            TcpState::Closed => {
                if !flags.contains(TcpFlags::RST) {
                    // RFC 793: the RST acknowledges the whole segment,
                    // counting SYN and FIN as one sequence number each.
                    let seg_len = payload.len() as u32
                        + u32::from(flags.contains(TcpFlags::SYN))
                        + u32::from(flags.contains(TcpFlags::FIN));
                    actions.push(self.emit_rst(
                        if flags.contains(TcpFlags::ACK) {
                            hdr.ack
                        } else {
                            0
                        },
                        (!flags.contains(TcpFlags::ACK)).then(|| hdr.seq.wrapping_add(seg_len)),
                    ));
                }
                return actions;
            }
            TcpState::SynSent => return self.input_syn_sent(hdr, payload, now),
            _ => {}
        }

        // RST processing.
        if flags.contains(TcpFlags::RST) {
            if self.seq_acceptable(hdr.seq, payload.len()) || self.state == TcpState::SynReceived {
                return self.reset(SocketError::ConnReset);
            }
            return actions;
        }

        // Sequence acceptability; trim to window.
        let (seq, data) = match self.trim_to_window(hdr.seq, payload, flags) {
            Some(t) => t,
            None => {
                // Unacceptable segment: ACK and drop (keeps the peer
                // synchronized; also handles old duplicates).
                actions.extend(self.emit_ack(now));
                return actions;
            }
        };

        // A SYN inside the window of a synchronized connection is an
        // error.
        if flags.contains(TcpFlags::SYN) && self.state.is_synchronized() {
            actions.extend(self.reset(SocketError::ConnReset));
            return actions;
        }

        if !flags.contains(TcpFlags::ACK) {
            return actions;
        }

        // ACK processing.
        if self.state == TcpState::SynReceived {
            if seq_le(self.snd_una, hdr.ack) && seq_le(hdr.ack, self.snd_max) {
                self.state = TcpState::Established;
                actions.push(TcpAction::Connected);
                if self.rexmt_armed {
                    self.rexmt_armed = false;
                    actions.push(TcpAction::CancelTimer(TcpTimer::Rexmt));
                }
            } else {
                actions.push(self.emit_rst(hdr.ack, None));
                return actions;
            }
        }
        actions.extend(self.process_ack(hdr, now));
        if matches!(self.state, TcpState::Closed | TcpState::TimeWait)
            && !flags.contains(TcpFlags::FIN)
        {
            return actions;
        }

        // Window update (RFC 793 SND.WND handling).
        if seq_lt(self.snd_wl1, seq) || (self.snd_wl1 == seq && seq_le(self.snd_wl2, hdr.ack)) {
            let old_wnd = self.snd_wnd;
            self.snd_wnd = u32::from(hdr.window);
            self.snd_wl1 = seq;
            self.snd_wl2 = hdr.ack;
            if self.snd_wnd > old_wnd {
                // Window opened: try to send.
                actions.extend(self.output(now, false));
            }
        }

        // Urgent pointer.
        if flags.contains(TcpFlags::URG) {
            let up = seq.wrapping_add(u32::from(hdr.urgent));
            if seq_gt(up, self.rcv_up) {
                self.rcv_up = up;
            }
        }

        // Payload processing.
        if !data.is_empty() {
            actions.extend(self.process_data(seq, &data, now));
        }

        // FIN processing.
        if flags.contains(TcpFlags::FIN) {
            let fin_seq = seq.wrapping_add(data.len() as u32);
            if fin_seq == self.rcv_nxt {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                if !self.fin_rcvd {
                    self.fin_rcvd = true;
                    actions.push(TcpAction::PeerClosed);
                }
                match self.state {
                    TcpState::Established => self.state = TcpState::CloseWait,
                    TcpState::FinWait1 => {
                        // Our FIN not yet acked (otherwise we'd already
                        // be in FinWait2 via process_ack).
                        self.state = TcpState::Closing;
                    }
                    TcpState::FinWait2 => {
                        self.state = TcpState::TimeWait;
                        actions.push(TcpAction::SetTimer(TcpTimer::TwoMsl, MSL_2));
                    }
                    _ => {}
                }
                actions.extend(self.emit_ack(now));
            } else {
                // Out-of-order FIN: ACK what we have.
                actions.extend(self.emit_ack(now));
            }
        }

        actions
    }

    fn input_syn_sent(&mut self, hdr: &TcpHeader, payload: &[u8], now: SimTime) -> Vec<TcpAction> {
        let mut actions = Vec::new();
        let flags = hdr.flags;
        if flags.contains(TcpFlags::ACK)
            && (seq_le(hdr.ack, self.iss) || seq_gt(hdr.ack, self.snd_max))
        {
            if !flags.contains(TcpFlags::RST) {
                actions.push(self.emit_rst(hdr.ack, None));
            }
            return actions;
        }
        if flags.contains(TcpFlags::RST) {
            if flags.contains(TcpFlags::ACK) {
                actions.extend(self.reset(SocketError::ConnRefused));
            }
            return actions;
        }
        if !flags.contains(TcpFlags::SYN) {
            return actions;
        }
        self.irs = hdr.seq;
        self.rcv_nxt = hdr.seq.wrapping_add(1);
        if let Some(m) = hdr.mss {
            self.mss = self.mss.min(m);
            self.cwnd = u32::from(self.mss);
        }
        self.snd_wnd = u32::from(hdr.window);
        self.snd_wl1 = hdr.seq;
        if flags.contains(TcpFlags::ACK) {
            // SYN|ACK: handshake complete.
            self.snd_una = hdr.ack;
            self.snd_wl2 = hdr.ack;
            self.rtt_sample(now);
            self.state = TcpState::Established;
            if self.rexmt_armed {
                self.rexmt_armed = false;
                actions.push(TcpAction::CancelTimer(TcpTimer::Rexmt));
            }
            self.rxtshift = 0;
            actions.push(TcpAction::Connected);
            actions.extend(self.emit_ack(now));
            // Data may already be queued behind the handshake.
            actions.extend(self.output(now, false));
            if !payload.is_empty() {
                actions.extend(self.process_data(self.rcv_nxt, payload, now));
            }
        } else {
            // Simultaneous open.
            self.state = TcpState::SynReceived;
            actions.push(TcpAction::Send(SegmentSpec {
                local: self.local,
                remote: self.remote,
                seq: self.iss,
                ack: self.rcv_nxt,
                flags: TcpFlags::SYN | TcpFlags::ACK,
                wnd: self.rcv_wnd() as u16,
                urp: 0,
                mss: Some(self.mss),
                data: MbufChain::new(),
                rexmit: true,
            }));
        }
        actions
    }

    fn seq_acceptable(&self, seq: u32, len: usize) -> bool {
        let wnd = self.rcv_wnd();
        if len == 0 {
            if wnd == 0 {
                seq == self.rcv_nxt
            } else {
                seq_le(self.rcv_nxt, seq) && seq_lt(seq, self.rcv_nxt.wrapping_add(wnd))
            }
        } else if wnd == 0 {
            false
        } else {
            let end = seq.wrapping_add(len as u32 - 1);
            (seq_le(self.rcv_nxt, seq) && seq_lt(seq, self.rcv_nxt.wrapping_add(wnd)))
                || (seq_le(self.rcv_nxt, end) && seq_lt(end, self.rcv_nxt.wrapping_add(wnd)))
        }
    }

    /// Trims an arriving segment to the receive window; returns the
    /// usable `(seq, data)` or `None` if wholly unacceptable.
    fn trim_to_window(&self, seq: u32, payload: &[u8], flags: TcpFlags) -> Option<(u32, Vec<u8>)> {
        let _ = flags;
        if !self.seq_acceptable(seq, payload.len()) {
            return None;
        }
        let mut seq = seq;
        let mut data = payload.to_vec();
        // Trim the front (old data already received).
        if seq_lt(seq, self.rcv_nxt) {
            let drop = self.rcv_nxt.wrapping_sub(seq) as usize;
            if drop >= data.len() {
                // Pure old duplicate that still passed acceptability
                // (e.g. seq at window edge); keep as empty.
                data.clear();
                seq = self.rcv_nxt;
            } else {
                data.drain(..drop);
                seq = self.rcv_nxt;
            }
        }
        // Trim the back to the window.
        let wnd = self.rcv_wnd() as usize;
        let max = self.rcv_nxt.wrapping_add(wnd as u32);
        let end = seq.wrapping_add(data.len() as u32);
        if seq_gt(end, max) {
            let excess = end.wrapping_sub(max) as usize;
            data.truncate(data.len().saturating_sub(excess));
        }
        Some((seq, data))
    }

    fn process_ack(&mut self, hdr: &TcpHeader, now: SimTime) -> Vec<TcpAction> {
        let ack = hdr.ack;
        let mut actions = Vec::new();
        if seq_le(ack, self.snd_una) {
            // Duplicate ACK. Counted only if it carries no data/window
            // news and data is outstanding.
            if hdr.window as u32 == self.snd_wnd && seq_lt(self.snd_una, self.snd_max) {
                self.dupacks += 1;
                if self.dupacks == REXMT_THRESH {
                    // Fast retransmit.
                    self.fast_rexmts += 1;
                    let onxt = self.snd_nxt;
                    self.ssthresh = (self.snd_wnd.min(self.cwnd) / 2).max(2 * u32::from(self.mss));
                    self.snd_nxt = self.snd_una;
                    self.cwnd = u32::from(self.mss);
                    self.rtt_probe = None; // Karn: do not time retransmits.
                    actions.extend(self.output(now, true));
                    self.cwnd = self.ssthresh + REXMT_THRESH * u32::from(self.mss);
                    if seq_gt(onxt, self.snd_nxt) {
                        self.snd_nxt = onxt;
                    }
                } else if self.dupacks > REXMT_THRESH {
                    self.cwnd += u32::from(self.mss);
                    actions.extend(self.output(now, false));
                }
            } else {
                self.dupacks = 0;
            }
            return actions;
        }
        if seq_gt(ack, self.snd_max) {
            // ACK for data never sent.
            actions.extend(self.emit_ack(now));
            return actions;
        }

        // A new ACK.
        if self.dupacks >= REXMT_THRESH {
            // Leaving fast recovery: deflate.
            self.cwnd = self.ssthresh;
        }
        self.dupacks = 0;

        // RTT sampling (Karn's rule handled by clearing the probe on
        // retransmission).
        if let Some((pseq, _)) = self.rtt_probe {
            if seq_gt(ack, pseq) {
                self.rtt_sample(now);
            }
        }

        let acked = ack.wrapping_sub(self.snd_una) as usize;
        let fin_acked = self
            .fin_sent_seq
            .is_some_and(|fs| seq_ge(ack, fs.wrapping_add(1)));
        let data_acked = acked
            .saturating_sub(usize::from(fin_acked))
            // The SYN occupies one sequence number; when it is acked the
            // send buffer holds no corresponding byte.
            .min(self.snd_buf.len());
        if data_acked > 0 {
            self.snd_buf.drop_front(data_acked);
            actions.push(TcpAction::WakeWriters);
        }
        self.snd_una = ack;
        if seq_gt(self.snd_una, self.snd_nxt) {
            self.snd_nxt = self.snd_una;
        }
        self.rxtshift = 0;

        // Congestion avoidance / slow start.
        let incr = if self.cwnd <= self.ssthresh {
            u32::from(self.mss)
        } else {
            (u32::from(self.mss) * u32::from(self.mss) / self.cwnd).max(1)
        };
        self.cwnd = (self.cwnd + incr).min(MAX_WINDOW);

        // Retransmission timer: restart if data remains outstanding.
        if self.rexmt_armed {
            self.rexmt_armed = false;
            actions.push(TcpAction::CancelTimer(TcpTimer::Rexmt));
        }
        if seq_lt(self.snd_una, self.snd_max) {
            self.rexmt_armed = true;
            actions.push(TcpAction::SetTimer(TcpTimer::Rexmt, self.rto()));
        }

        // State transitions driven by our FIN being acknowledged.
        if fin_acked {
            match self.state {
                TcpState::FinWait1 => self.state = TcpState::FinWait2,
                TcpState::Closing => {
                    self.state = TcpState::TimeWait;
                    actions.push(TcpAction::SetTimer(TcpTimer::TwoMsl, MSL_2));
                }
                TcpState::LastAck => {
                    self.state = TcpState::Closed;
                    actions.push(TcpAction::Free);
                }
                _ => {}
            }
        }

        // More data may now fit in the window.
        actions.extend(self.output(now, false));
        actions
    }

    fn rtt_sample(&mut self, now: SimTime) {
        let Some((_, start)) = self.rtt_probe.take() else {
            return;
        };
        let rtt = (now - start).as_nanos();
        if self.rtt_valid {
            // Jacobson: srtt += (rtt - srtt)/8; rttvar += (|err| - rttvar)/4.
            let err = rtt as i64 - self.srtt as i64;
            self.srtt = (self.srtt as i64 + err / 8).max(1) as u64;
            let aerr = err.unsigned_abs();
            self.rttvar =
                ((self.rttvar as i64) + ((aerr as i64 - self.rttvar as i64) / 4)).max(1) as u64;
        } else {
            self.srtt = rtt;
            self.rttvar = rtt / 2;
            self.rtt_valid = true;
        }
    }

    fn process_data(&mut self, seq: u32, data: &[u8], now: SimTime) -> Vec<TcpAction> {
        let mut actions = Vec::new();
        if data.is_empty() {
            return actions;
        }
        if seq == self.rcv_nxt {
            // In-order: append, then drain any contiguous reassembly.
            let was_empty = self.rcv_buf.is_empty();
            let take = data.len().min(self.rcv_buf.space());
            self.rcv_buf.append(MbufChain::from_slice(&data[..take]));
            self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
            self.drain_reassembly();
            actions.push(TcpAction::Deliver { wake: was_empty });
            // Delayed ACK: every second segment, or 200 ms.
            if self.delack_pending {
                actions.extend(self.emit_ack(now));
            } else {
                self.delack_pending = true;
                actions.push(TcpAction::SetTimer(TcpTimer::DelAck, DELACK));
            }
        } else {
            // Out of order: queue and send an immediate duplicate ACK
            // (this is what drives the peer's fast retransmit).
            self.reass.push((seq, data.to_vec()));
            self.reass.sort_by(|a, b| {
                if seq_lt(a.0, b.0) {
                    std::cmp::Ordering::Less
                } else if a.0 == b.0 {
                    std::cmp::Ordering::Equal
                } else {
                    std::cmp::Ordering::Greater
                }
            });
            actions.extend(self.emit_ack(now));
        }
        actions
    }

    fn drain_reassembly(&mut self) {
        loop {
            let mut advanced = false;
            let mut i = 0;
            while i < self.reass.len() {
                let s = self.reass[i].0;
                let end = s.wrapping_add(self.reass[i].1.len() as u32);
                if seq_le(end, self.rcv_nxt) {
                    // Entirely old.
                    self.reass.remove(i);
                    continue;
                }
                if seq_le(s, self.rcv_nxt) {
                    let (_, d) = self.reass.remove(i);
                    let skip = self.rcv_nxt.wrapping_sub(s) as usize;
                    let useful = &d[skip..];
                    let take = useful.len().min(self.rcv_buf.space());
                    self.rcv_buf.append(MbufChain::from_slice(&useful[..take]));
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(take as u32);
                    advanced = true;
                    break;
                }
                i += 1;
            }
            if !advanced {
                break;
            }
        }
    }

    // --- Timers ---

    /// Drives a timer expiry.
    pub fn timer(&mut self, which: TcpTimer, now: SimTime) -> Vec<TcpAction> {
        match which {
            TcpTimer::Rexmt => self.timer_rexmt(now),
            TcpTimer::Persist => self.timer_persist(now),
            TcpTimer::DelAck => {
                if self.delack_pending {
                    self.delack_pending = false;
                    self.emit_ack(now)
                } else {
                    Vec::new()
                }
            }
            TcpTimer::TwoMsl => {
                if self.state == TcpState::TimeWait {
                    self.state = TcpState::Closed;
                    vec![TcpAction::Free]
                } else {
                    Vec::new()
                }
            }
        }
    }

    fn timer_rexmt(&mut self, now: SimTime) -> Vec<TcpAction> {
        self.rexmt_armed = false;
        self.rxtshift += 1;
        if self.rxtshift > MAX_RXT {
            return self.drop_connection(SocketError::TimedOut);
        }
        self.rexmt_segs += 1;
        // Karn: invalidate the outstanding RTT measurement.
        self.rtt_probe = None;
        // Collapse the congestion window.
        self.ssthresh = (self.snd_wnd.min(self.cwnd) / 2).max(2 * u32::from(self.mss));
        self.cwnd = u32::from(self.mss);
        self.dupacks = 0;

        let mut actions = Vec::new();
        match self.state {
            TcpState::SynSent => {
                // Retransmit the SYN.
                actions.push(TcpAction::Send(SegmentSpec {
                    local: self.local,
                    remote: self.remote,
                    seq: self.iss,
                    ack: 0,
                    flags: TcpFlags::SYN,
                    wnd: self.rcv_wnd() as u16,
                    urp: 0,
                    mss: Some(self.mss),
                    data: MbufChain::new(),
                    rexmit: true,
                }));
            }
            TcpState::SynReceived => {
                actions.push(TcpAction::Send(SegmentSpec {
                    local: self.local,
                    remote: self.remote,
                    seq: self.iss,
                    ack: self.rcv_nxt,
                    flags: TcpFlags::SYN | TcpFlags::ACK,
                    wnd: self.rcv_wnd() as u16,
                    urp: 0,
                    mss: Some(self.mss),
                    data: MbufChain::new(),
                    rexmit: true,
                }));
            }
            _ => {
                // Go back to the first unacknowledged byte.
                self.snd_nxt = self.snd_una;
                actions.extend(self.output(now, true));
            }
        }
        self.rexmt_armed = true;
        actions.push(TcpAction::SetTimer(TcpTimer::Rexmt, self.rto()));
        actions
    }

    fn timer_persist(&mut self, now: SimTime) -> Vec<TcpAction> {
        self.persist_armed = false;
        if self.snd_wnd == 0 && !self.snd_buf.is_empty() {
            self.persist_shift += 1;
            let mut actions = self.output(now, true);
            if !self.persist_armed {
                self.persist_armed = true;
                actions.push(TcpAction::SetTimer(
                    TcpTimer::Persist,
                    self.persist_backoff(),
                ));
            }
            actions
        } else {
            self.persist_shift = 0;
            Vec::new()
        }
    }

    // --- Close paths ---

    /// Application close: send FIN after queued data.
    pub fn close(&mut self, now: SimTime) -> Vec<TcpAction> {
        match self.state {
            TcpState::Closed => vec![TcpAction::Free],
            TcpState::SynSent => {
                self.state = TcpState::Closed;
                vec![TcpAction::Free]
            }
            TcpState::SynReceived | TcpState::Established => {
                self.state = TcpState::FinWait1;
                self.output(now, false)
            }
            TcpState::CloseWait => {
                self.state = TcpState::LastAck;
                self.output(now, false)
            }
            // Already closing.
            _ => Vec::new(),
        }
    }

    /// Abortive close: RST to the peer, local teardown.
    pub fn abort(&mut self) -> Vec<TcpAction> {
        let mut actions = Vec::new();
        if self.state.is_synchronized() {
            actions.push(self.emit_rst(self.snd_nxt, Some(self.rcv_nxt)));
        }
        self.state = TcpState::Closed;
        self.error = Some(SocketError::ConnReset);
        actions.push(TcpAction::CancelTimer(TcpTimer::Rexmt));
        actions.push(TcpAction::CancelTimer(TcpTimer::Persist));
        actions.push(TcpAction::CancelTimer(TcpTimer::DelAck));
        actions.push(TcpAction::Free);
        actions
    }

    fn reset(&mut self, err: SocketError) -> Vec<TcpAction> {
        self.state = TcpState::Closed;
        self.error = Some(err);
        vec![
            TcpAction::CancelTimer(TcpTimer::Rexmt),
            TcpAction::CancelTimer(TcpTimer::Persist),
            TcpAction::CancelTimer(TcpTimer::DelAck),
            TcpAction::Fail(err),
            TcpAction::Free,
        ]
    }

    fn drop_connection(&mut self, err: SocketError) -> Vec<TcpAction> {
        self.reset(err)
    }

    // --- Migration (§3.1) ---

    /// Captures the complete connection state for migration.
    pub fn export(&self) -> TcbSnapshot {
        let mut snd_data = vec![0u8; self.snd_buf.len()];
        self.snd_buf.peek(&mut snd_data);
        let mut rcv_data = vec![0u8; self.rcv_buf.len()];
        self.rcv_buf.peek(&mut rcv_data);
        TcbSnapshot {
            state: self.state,
            local: self.local,
            remote: self.remote,
            snd: (
                self.iss,
                self.snd_una,
                self.snd_nxt,
                self.snd_max,
                self.snd_wnd,
                self.snd_wl1,
                self.snd_wl2,
                self.snd_up,
            ),
            rcv: (self.irs, self.rcv_nxt, self.rcv_adv, self.rcv_up),
            congestion: (self.cwnd, self.ssthresh),
            rtt: (self.srtt, self.rttvar, self.rtt_valid),
            mss: self.mss,
            snd_data,
            rcv_data,
            reass: self.reass.clone(),
            hiwat: (self.snd_buf.hiwat(), self.rcv_buf.hiwat()),
            nodelay: self.nodelay,
            fin_rcvd: self.fin_rcvd,
        }
    }

    /// Reconstructs a TCB from a migration capsule.
    pub fn import(snap: TcbSnapshot) -> Tcb {
        let mut tcb = Tcb::new(snap.local, snap.remote, snap.hiwat.0, snap.hiwat.1);
        tcb.state = snap.state;
        tcb.iss = snap.snd.0;
        tcb.snd_una = snap.snd.1;
        tcb.snd_nxt = snap.snd.2;
        tcb.snd_max = snap.snd.3;
        tcb.snd_wnd = snap.snd.4;
        tcb.snd_wl1 = snap.snd.5;
        tcb.snd_wl2 = snap.snd.6;
        tcb.snd_up = snap.snd.7;
        tcb.irs = snap.rcv.0;
        tcb.rcv_nxt = snap.rcv.1;
        tcb.rcv_adv = snap.rcv.2;
        tcb.rcv_up = snap.rcv.3;
        tcb.cwnd = snap.congestion.0;
        tcb.ssthresh = snap.congestion.1;
        tcb.srtt = snap.rtt.0;
        tcb.rttvar = snap.rtt.1;
        tcb.rtt_valid = snap.rtt.2;
        tcb.mss = snap.mss;
        tcb.nodelay = snap.nodelay;
        tcb.fin_rcvd = snap.fin_rcvd;
        if !snap.snd_data.is_empty() {
            tcb.snd_buf.append(MbufChain::from_slice(&snap.snd_data));
        }
        if !snap.rcv_data.is_empty() {
            tcb.rcv_buf.append(MbufChain::from_slice(&snap.rcv_data));
        }
        tcb.reass = snap.reass;
        tcb
    }
}

#[cfg(test)]
mod tests;
