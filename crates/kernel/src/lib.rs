//! The simulated microkernel: the user/kernel network interface.
//!
//! The paper's kernel "exports a packet send and receive interface"
//! (Figure 1). This crate provides it:
//!
//! - **Send**: [`Kernel::send_from_user`] is the low-latency system call
//!   applications use to transmit ("Applications send packets directly
//!   to the network interface using a low-latency system call"); it
//!   traps, copies the frame into a wired kernel buffer, and copies it
//!   to the device. [`Kernel::send_from_kernel`] is the in-kernel
//!   stack's path, which skips the trap and user copy.
//! - **Receive**: the kernel fields the device interrupt, demultiplexes
//!   with the installed per-session packet filters
//!   ([`psd_filter::DemuxTable`]), and delivers to the owning endpoint
//!   through one of three paths ([`RxMode`]):
//!   [`RxMode::Ipc`] (one Mach IPC message per packet),
//!   [`RxMode::Shm`] (copy into a ring shared with the application,
//!   lightweight wakeup amortized over packet trains), and
//!   [`RxMode::ShmIpf`] (the device-integrated filter: the body copy is
//!   deferred past demultiplexing and goes *directly* from device memory
//!   into the shared ring, eliminating the intermediate kernel-buffer
//!   copy).
//! - **RPC**: [`rpc_data_charge`] prices the four-copy Mach RPC data
//!   path the server-based configuration pays on every send and receive.
//!
//! Every boundary crossing and copy is charged to the host CPU through
//! the calibrated [`CostModel`]; the crossings are recorded on the
//! latency probe so Table 4's asterisks can be regenerated.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use psd_filter::{
    CopyPlacement, DemuxStrategy, DemuxTable, EndpointSpec, FilterEngine, FilterId, PlacementPolicy,
};
use psd_netdev::{Ethernet, EthernetHandle, Station};
use psd_sim::{
    Charge, CostModel, Cpu, Domain, DropCounters, DropReason, FaultSite, Layer, OpKind, Sim,
    SimTime, Stage, TraceHandle, TraceId,
};
use psd_wire::{
    EtherAddr, EtherType, EthernetHeader, IpProto, Ipv4Header, TcpFlags, TcpHeader, ETHER_HDR_LEN,
    IPV4_HDR_LEN,
};

/// Captures the tracing context of a charge — the tracer and the packet
/// currently being processed — so an asynchronous continuation (a
/// delivery closure, a deferred wakeup decision) can re-establish it.
fn trace_ctx(charge: &Charge) -> (Option<TraceHandle>, Option<TraceId>) {
    let tracer = charge.trace_handle();
    let id = tracer.as_ref().and_then(|t| t.borrow().current());
    (tracer, id)
}

/// A recoverable kernel-interface failure. Fault paths report these
/// instead of panicking so injected faults surface as errors the
/// operating system can degrade around.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelError {
    /// The kernel is not attached to an Ethernet segment.
    NotConnected,
    /// The named endpoint does not exist (it may have been destroyed
    /// while the operation was in flight).
    UnknownEndpoint,
    /// The packet-filter table is full; no further session filters can
    /// be installed until one is removed.
    FilterTableFull,
}

impl std::fmt::Display for KernelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KernelError::NotConnected => write!(f, "kernel not connected to a segment"),
            KernelError::UnknownEndpoint => write!(f, "unknown endpoint"),
            KernelError::FilterTableFull => write!(f, "packet-filter table full"),
        }
    }
}

/// How packets reach an endpoint's address space.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RxMode {
    /// Each packet is delivered in its own IPC message (baseline).
    Ipc,
    /// Packets are copied into a shared-memory ring; the receiving
    /// thread is signalled only when idle, amortizing scheduling over
    /// packet trains.
    Shm,
    /// As [`RxMode::Shm`], with the filter integrated into the device
    /// driver: the packet body is copied once, from device memory
    /// directly into the ring (no intermediate kernel buffer).
    ShmIpf,
    /// The endpoint is the in-kernel protocol stack: input runs at
    /// interrupt level in the same charge, no boundary is crossed, and
    /// demultiplexing is a pcb lookup rather than a filter program.
    InKernel,
}

impl RxMode {
    /// True for the shared-memory variants.
    pub fn is_shm(self) -> bool {
        matches!(self, RxMode::Shm | RxMode::ShmIpf)
    }
}

/// Configuration of the batched NEWAPI data path (the §4.2 extension:
/// ROADMAP item 3). The default is the unbatched paper system; every
/// branch it enables is provably inert while it stays at the default.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BatchConfig {
    /// Descriptors moved per ring crossing: the first descriptor of
    /// each window of `batch` pays the boundary crossing and the
    /// wakeup, the rest ride the same doorbell. 1 = unbatched.
    pub batch: usize,
    /// GRO: coalesce in-order same-flow TCP data segments into one
    /// delivered descriptor before the ring crossing.
    pub gro: bool,
    /// GSO: allow super-descriptor sends that the stack segments at
    /// transmit under one amortized entry charge.
    pub gso: bool,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig {
            batch: 1,
            gro: false,
            gso: false,
        }
    }
}

impl BatchConfig {
    /// The unbatched (paper) configuration.
    pub fn unbatched() -> BatchConfig {
        BatchConfig::default()
    }

    /// Batch size `b` with coalescing and segmentation enabled.
    pub fn full(b: usize) -> BatchConfig {
        BatchConfig {
            batch: b.max(1),
            gro: true,
            gso: true,
        }
    }

    /// True if any batching behavior differs from the unbatched system.
    pub fn enabled(&self) -> bool {
        self.batch > 1 || self.gro || self.gso
    }
}

/// Largest synthesized GRO frame: one two-cluster ring slot (2 ×
/// MCLBYTES). Coalescing never grows a descriptor past this; at the
/// standard 1460-byte MSS that caps a super-frame at two segments.
pub const GRO_MAX_FRAME: usize = 4096;

/// How long a partially filled GRO descriptor may be held before it is
/// flushed to its endpoint, in microseconds. Longer than the wire gap
/// between back-to-back small frames (~60 µs at 10 Mb/s), far shorter
/// than any TCP retransmission timeout.
pub const GRO_FLUSH_DELAY_US: u64 = 2_000;

/// TCP flow key: (src ip, src port, dst ip, dst port).
type GroFlow = (Ipv4Addr, u16, Ipv4Addr, u16);

/// A held, partially coalesced receive descriptor.
struct GroSlot {
    flow: GroFlow,
    eth: EthernetHeader,
    /// First segment's IP header; `total_len` is rewritten at flush.
    ip: Ipv4Header,
    /// First segment's TCP header; `ack`/`window` track the newest
    /// merged segment, `seq` stays at the head of the run.
    tcp: TcpHeader,
    payload: Vec<u8>,
    next_seq: u32,
    count: usize,
    /// Guards the deadline event: a slot flushed and re-created between
    /// schedule and fire has a different generation.
    generation: u64,
    tracer: Option<TraceHandle>,
    tid: Option<TraceId>,
}

impl GroSlot {
    /// Re-encodes the held run as one well-formed Ethernet frame. For a
    /// single-segment slot this reproduces the original frame (headers
    /// are only admitted if they round-trip canonically).
    fn synthesize(&self) -> Vec<u8> {
        let mut ip = self.ip;
        ip.total_len = (IPV4_HDR_LEN + self.tcp.header_len() + self.payload.len()) as u16;
        let tcp_bytes = self.tcp.encode_with_checksum(
            &ip,
            self.payload.len(),
            std::iter::once(self.payload.as_slice()),
        );
        let mut f = self.eth.encode().to_vec();
        f.extend_from_slice(&ip.encode());
        f.extend_from_slice(&tcp_bytes);
        f.extend_from_slice(&self.payload);
        f
    }
}

/// A verified, coalescible TCP data segment.
struct GroSeg {
    eth: EthernetHeader,
    ip: Ipv4Header,
    tcp: TcpHeader,
    payload: Vec<u8>,
    /// TCP header + payload bytes (what the checksum verification
    /// walked, for cost accounting).
    tcp_len: usize,
}

impl GroSeg {
    fn flow(&self) -> GroFlow {
        (
            self.ip.src,
            self.tcp.src_port,
            self.ip.dst,
            self.tcp.dst_port,
        )
    }
}

/// Admits a frame to coalescing only if it is an unfragmented,
/// optionless IPv4 TCP segment carrying data under a pure ACK flag,
/// whose IP header round-trips canonically (valid checksum) and whose
/// TCP checksum verifies. Anything else — SYN/FIN/RST/PSH/URG, bare
/// ACKs, fragments, corrupt frames — is left for the normal path, so
/// the stack's own verdicts (including checksum drops) are unchanged.
fn gro_parse(frame: &[u8]) -> Option<GroSeg> {
    let eth = EthernetHeader::parse(frame).ok()?;
    if eth.ethertype != EtherType::Ipv4 {
        return None;
    }
    let ip = Ipv4Header::parse(frame.get(ETHER_HDR_LEN..)?).ok()?;
    if ip.header_len != 20 || ip.is_fragment() || ip.proto != IpProto::Tcp {
        return None;
    }
    if ip.encode()[..] != frame[ETHER_HDR_LEN..ETHER_HDR_LEN + IPV4_HDR_LEN] {
        return None;
    }
    // The wire pads short frames to the Ethernet minimum; the IP total
    // length bounds the real segment.
    let tp = frame.get(ETHER_HDR_LEN + IPV4_HDR_LEN..ETHER_HDR_LEN + ip.total_len as usize)?;
    let (tcp, thl) = TcpHeader::parse(tp).ok()?;
    if tcp.flags != TcpFlags::ACK {
        return None;
    }
    let payload = tp.get(thl..)?;
    if payload.is_empty() {
        return None;
    }
    if !TcpHeader::verify(&ip, &tp[..thl], payload.len(), std::iter::once(payload)) {
        return None;
    }
    Some(GroSeg {
        eth,
        ip,
        tcp,
        payload: payload.to_vec(),
        tcp_len: tp.len(),
    })
}

/// Bytes of `frame` that are link/network/transport headers — what a
/// kernel-resident (header-only) delivery materializes in the ring.
/// Unparseable frames are copied whole.
fn header_span(frame: &[u8]) -> usize {
    let full = frame.len();
    let Ok(eth) = EthernetHeader::parse(frame) else {
        return full;
    };
    if eth.ethertype != EtherType::Ipv4 {
        return full;
    }
    let Ok(ip) = Ipv4Header::parse(&frame[ETHER_HDR_LEN..]) else {
        return full;
    };
    let net = ETHER_HDR_LEN + ip.header_len;
    let transport = match ip.proto {
        IpProto::Tcp => frame
            .get(net..)
            .and_then(|tp| TcpHeader::parse(tp).ok())
            .map_or(0, |(_, thl)| thl),
        IpProto::Udp => psd_wire::UDP_HDR_LEN,
        _ => 0,
    };
    (net + transport).min(full)
}

/// A receive endpoint identifier (one per installed session, plus the
/// operating system's catch-all).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EndpointId(pub u64);

/// Packet sink: invoked (via a scheduled event, never synchronously
/// within kernel context) with each delivered frame. The sink opens its
/// own CPU charge; the `SimTime` argument is when the packet became
/// available to the domain.
pub type PacketSink = Rc<RefCell<dyn FnMut(&mut Sim, SimTime, Vec<u8>)>>;

/// In-kernel sink: invoked synchronously at interrupt level with the
/// open receive charge (the in-kernel protocol stack).
pub type InKernelSink = Rc<RefCell<dyn FnMut(&mut Sim, &mut Charge, Vec<u8>)>>;

enum Sink {
    Async(PacketSink),
    InKernel(InKernelSink),
}

struct Endpoint {
    mode: RxMode,
    sink: Sink,
    /// For SHM modes: when the receiving network thread will next check
    /// the ring; arrivals before this need no wakeup.
    thread_busy_until: SimTime,
    filter: Option<FilterId>,
    /// Remaining descriptors in the current batch window that ride the
    /// doorbell the window's first descriptor already paid for. Always
    /// 0 while batching is off.
    batch_credit: usize,
}

/// Counters for the kernel network interface.
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// Frames transmitted for user tasks.
    pub tx_user: u64,
    /// Frames transmitted for the in-kernel stack.
    pub tx_kernel: u64,
    /// Frames received from the wire.
    pub rx_frames: u64,
    /// Frames delivered to a session endpoint.
    pub rx_session: u64,
    /// Frames delivered to the default (operating system) endpoint.
    pub rx_default: u64,
    /// Frames dropped because no endpoint claimed them.
    pub rx_unclaimed: u64,
    /// Wakeups skipped because the receiving thread was already busy
    /// (the SHM amortization).
    pub wakeups_amortized: u64,
    /// User transmissions rejected by the outbound packet limiter.
    pub tx_rejected: u64,
    /// Frames dropped because the kernel was not attached to a segment
    /// when the transmit event ran.
    pub tx_disconnected: u64,
    /// Frames dropped by an injected receive fault ([`FaultSite::NicRx`]).
    pub rx_faulted: u64,
    /// Cumulative filter instructions executed classifying received
    /// frames. Purely observational — the per-frame cost is charged to
    /// virtual time where it is incurred — but dividing the delta by
    /// `rx_frames` gives the per-packet demux cost the Table 5 scaling
    /// benchmark reports.
    pub filter_steps: u64,
    /// Always-on per-reason drop counters for every frame the kernel
    /// interface discards (typed mirror of the drop sites above; the
    /// same taxonomy terminates packet traces when a tracer is
    /// attached).
    pub drops: DropCounters,
    /// Delivery-path ring crossings actually charged (one per batch
    /// window, so `ceil(frames / batch)` per endpoint).
    pub rx_delivery_crossings: u64,
    /// The subset of [`rx_delivery_crossings`](KernelStats::rx_delivery_crossings)
    /// charged for session (non-default) endpoints — the numerator of
    /// Table 6's crossings/pkt.
    pub rx_session_crossings: u64,
    /// GRO descriptors held (runs started).
    pub gro_held: u64,
    /// Frames absorbed into a held GRO descriptor.
    pub gro_merged: u64,
    /// GRO descriptors flushed to their endpoint.
    pub gro_flushes: u64,
    /// GRO descriptors whose endpoint died while held; the synthesized
    /// frame was re-presented to the classify path (exactly-once).
    pub gro_requeued: u64,
    /// Deliveries where only the headers were materialized in the ring
    /// (selective-copy kernel-resident flows).
    pub header_only_deliveries: u64,
}

/// The simulated kernel for one host.
pub struct Kernel {
    me: std::rc::Weak<RefCell<Kernel>>,
    costs: CostModel,
    cpu: Rc<RefCell<Cpu>>,
    mac: EtherAddr,
    ether: Option<EthernetHandle>,
    demux: DemuxTable<EndpointId>,
    endpoints: HashMap<EndpointId, Endpoint>,
    default_endpoint: Option<EndpointId>,
    next_endpoint: u64,
    /// Optional outbound packet limiter (§3.4): "a packet limiting
    /// mechanism, if desired, could be implemented by checking each
    /// outgoing packet using a service similar to the packet filter."
    tx_limiter: Option<psd_filter::Program>,
    /// Maximum number of installed session filters; `None` means
    /// unbounded (the seed behavior). A real filter table is a fixed
    /// kernel resource, and exhausting it must degrade, not abort.
    filter_capacity: Option<usize>,
    /// Endpoints using the integrated-filter (IPF) discipline. Kept as a
    /// count so the per-frame "is any receiver IPF?" decision does not
    /// scan every endpoint.
    ipf_endpoints: usize,
    /// Batched-NEWAPI configuration (default: unbatched, inert).
    batch: BatchConfig,
    /// Selective-copy placement policy consulted at filter-install time;
    /// `None` (the default) means every flow is eager.
    placement_policy: Option<PlacementPolicy>,
    /// Held GRO descriptors, at most one per endpoint (a session
    /// endpoint receives exactly one flow; cross-flow arrivals flush).
    gro: HashMap<EndpointId, GroSlot>,
    /// Monotone generation counter guarding GRO deadline events.
    gro_gen: u64,
    /// Packets handed to an asynchronous delivery channel (IPC message
    /// or SHM ring) and not yet consumed by the receiving sink. Shared
    /// so the metrics plane can read it without borrowing the kernel.
    ring_occupancy: Rc<Cell<u64>>,
    stats: KernelStats,
}

/// Shared handle to a [`Kernel`].
pub type KernelHandle = Rc<RefCell<Kernel>>;

impl Kernel {
    /// Creates a kernel with the given cost model and MAC address.
    pub fn new(costs: CostModel, cpu: Rc<RefCell<Cpu>>, mac: EtherAddr) -> KernelHandle {
        let handle = Rc::new(RefCell::new(Kernel {
            me: std::rc::Weak::new(),
            costs,
            cpu,
            mac,
            ether: None,
            demux: DemuxTable::new(DemuxStrategy::Mpf),
            endpoints: HashMap::new(),
            default_endpoint: None,
            next_endpoint: 1,
            tx_limiter: None,
            filter_capacity: None,
            ipf_endpoints: 0,
            batch: BatchConfig::default(),
            placement_policy: None,
            gro: HashMap::new(),
            gro_gen: 0,
            ring_occupancy: Rc::new(Cell::new(0)),
            stats: KernelStats::default(),
        }));
        handle.borrow_mut().me = Rc::downgrade(&handle);
        handle
    }

    /// Selects the demultiplexing strategy (default: MPF). Must be
    /// called before filters are installed.
    pub fn set_demux_strategy(&mut self, strategy: DemuxStrategy) {
        assert!(
            self.demux.is_empty(),
            "cannot change strategy with installed filters"
        );
        self.demux = DemuxTable::with_engine(strategy, self.demux.engine());
    }

    /// Selects the filter execution engine (default: interpreter). The
    /// engines are observationally equivalent — same verdicts, same
    /// charged step counts — so this may be called at any time; the
    /// demux table keeps compiled artifacts in sync either way.
    pub fn set_filter_engine(&mut self, engine: FilterEngine) {
        self.demux.set_engine(engine);
    }

    /// The active filter execution engine.
    pub fn filter_engine(&self) -> FilterEngine {
        self.demux.engine()
    }

    /// Configures the batched NEWAPI data path. At the default
    /// configuration every batching branch is dead and the system is
    /// byte-identical to the unbatched paper system.
    pub fn set_batch_config(&mut self, batch: BatchConfig) {
        self.batch = batch;
    }

    /// The batching configuration in force.
    pub fn batch_config(&self) -> BatchConfig {
        self.batch
    }

    /// Installs (or clears) the selective-copy placement policy.
    /// Consulted when session filters are installed; filters already in
    /// the table keep their verdicts, so set the policy before sessions
    /// are created.
    pub fn set_placement_policy(&mut self, policy: Option<PlacementPolicy>) {
        self.placement_policy = policy;
    }

    /// The selective-copy placement policy in force, if any.
    pub fn placement_policy(&self) -> Option<PlacementPolicy> {
        self.placement_policy.clone()
    }

    /// Attaches the kernel to an Ethernet segment. The caller must also
    /// attach the same handle as a [`Station`] on the segment.
    pub fn connect(this: &KernelHandle, ether: &EthernetHandle) {
        this.borrow_mut().ether = Some(ether.clone());
        ether.borrow_mut().attach(this.clone());
    }

    /// The cost model in force.
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// The host CPU.
    pub fn cpu(&self) -> Rc<RefCell<Cpu>> {
        self.cpu.clone()
    }

    /// This interface's MAC address.
    pub fn mac(&self) -> EtherAddr {
        self.mac
    }

    /// Interface counters.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Packets currently in flight through an asynchronous delivery
    /// channel (IPC message queue or SHM ring), i.e. handed off by the
    /// interrupt path but not yet consumed by the receiving sink.
    pub fn ring_occupancy(&self) -> u64 {
        self.ring_occupancy.get()
    }

    /// Shared counter behind [`Kernel::ring_occupancy`], for gauges that
    /// must read it without borrowing the kernel.
    pub fn ring_occupancy_cell(&self) -> Rc<Cell<u64>> {
        self.ring_occupancy.clone()
    }

    /// Number of live receive endpoints.
    pub fn endpoint_count(&self) -> usize {
        self.endpoints.len()
    }

    // --- Endpoint and filter management (invoked by the OS server) ---

    /// Creates a receive endpoint with an asynchronous delivery path.
    pub fn create_endpoint(&mut self, mode: RxMode, sink: PacketSink) -> EndpointId {
        assert!(mode != RxMode::InKernel, "use create_inkernel_endpoint");
        let id = EndpointId(self.next_endpoint);
        self.next_endpoint += 1;
        if mode == RxMode::ShmIpf {
            self.ipf_endpoints += 1;
        }
        self.endpoints.insert(
            id,
            Endpoint {
                mode,
                sink: Sink::Async(sink),
                thread_busy_until: SimTime::ZERO,
                filter: None,
                batch_credit: 0,
            },
        );
        id
    }

    /// Creates the in-kernel stack endpoint (synchronous, interrupt
    /// level).
    pub fn create_inkernel_endpoint(&mut self, sink: InKernelSink) -> EndpointId {
        let id = EndpointId(self.next_endpoint);
        self.next_endpoint += 1;
        self.endpoints.insert(
            id,
            Endpoint {
                mode: RxMode::InKernel,
                sink: Sink::InKernel(sink),
                thread_busy_until: SimTime::ZERO,
                filter: None,
                batch_credit: 0,
            },
        );
        id
    }

    /// Destroys an endpoint, removing any filter that targets it.
    pub fn destroy_endpoint(&mut self, id: EndpointId) {
        if let Some(ep) = self.endpoints.remove(&id) {
            if ep.mode == RxMode::ShmIpf {
                self.ipf_endpoints -= 1;
            }
            if let Some(fid) = ep.filter {
                self.demux.remove(fid);
            }
        }
        if self.default_endpoint == Some(id) {
            self.default_endpoint = None;
        }
    }

    /// Marks an endpoint as the default receiver for packets no session
    /// filter claims (the operating system server, or the in-kernel
    /// stack in monolithic configurations).
    pub fn set_default_endpoint(&mut self, id: EndpointId) {
        assert!(self.endpoints.contains_key(&id), "unknown endpoint");
        self.default_endpoint = Some(id);
    }

    /// Caps the number of installed session filters (`None` lifts the
    /// cap). Installations beyond the cap fail with
    /// [`KernelError::FilterTableFull`].
    pub fn set_filter_capacity(&mut self, capacity: Option<usize>) {
        self.filter_capacity = capacity;
    }

    /// The filter-table capacity in force, if any.
    pub fn filter_capacity(&self) -> Option<usize> {
        self.filter_capacity
    }

    /// Number of session filters currently installed.
    pub fn filters_installed(&self) -> usize {
        self.demux.len()
    }

    /// Installs a session packet filter routing `spec` to `endpoint`.
    /// Only the operating system may call this (§3.1: the OS creates
    /// and installs a new packet filter for each network session).
    /// Fails — recoverably — if the endpoint is gone or the filter
    /// table is full; the caller is expected to degrade to the server
    /// path rather than abort.
    pub fn install_filter(
        &mut self,
        spec: EndpointSpec,
        endpoint: EndpointId,
    ) -> Result<FilterId, KernelError> {
        if !self.endpoints.contains_key(&endpoint) {
            return Err(KernelError::UnknownEndpoint);
        }
        if let Some(cap) = self.filter_capacity {
            if self.demux.len() >= cap {
                return Err(KernelError::FilterTableFull);
            }
        }
        let placement = self.placement_policy.as_ref().map(|p| p.classify(&spec));
        let fid = self.demux.install(spec, endpoint);
        if let Some(placement) = placement {
            self.demux.set_placement(fid, placement);
        }
        if let Some(ep) = self.endpoints.get_mut(&endpoint) {
            ep.filter = Some(fid);
        }
        Ok(fid)
    }

    /// Removes a session filter.
    pub fn remove_filter(&mut self, id: FilterId) -> bool {
        // Filter ids are never reused, and an install records the id on
        // exactly one endpoint, so the demux owner is the only endpoint
        // that can hold a live reference to `id`.
        if let Some(&owner) = self.demux.owner(id) {
            if let Some(ep) = self.endpoints.get_mut(&owner) {
                if ep.filter == Some(id) {
                    ep.filter = None;
                }
            }
        }
        self.demux.remove(id)
    }

    /// Retargets a session filter to a different endpoint — the atomic
    /// switch used when a session migrates between the operating system
    /// and an application.
    pub fn retarget_filter(&mut self, id: FilterId, endpoint: EndpointId) -> Option<FilterId> {
        let spec = self.demux.spec(id)?;
        self.demux.remove(id);
        // The removal above freed a table slot, so installation can only
        // fail if the target endpoint is gone.
        self.install_filter(spec, endpoint).ok()
    }

    // --- Transmit paths ---

    /// Transmit on behalf of a user task: a trap plus a copy of the
    /// frame from user space into a wired kernel buffer, then the copy
    /// into device memory. (§4.3: "the protocol code traps into the
    /// kernel and copies the packet from user space into a wired kernel
    /// buffer before copying it to device memory".)
    pub fn send_from_user(this: &KernelHandle, sim: &mut Sim, charge: &mut Charge, frame: Vec<u8>) {
        let (trap, kcopy, devw) = {
            let k = this.borrow();
            (k.costs.trap, k.costs.kcopy_byte, k.costs.dev_write_byte)
        };
        charge.site_push(Domain::Kernel, "tx");
        charge.crossing_in(
            Domain::Kernel,
            Layer::EtherOutput,
            SimTime::from_nanos(trap),
        );
        charge.add_per_byte(Layer::EtherOutput, kcopy, frame.len());
        charge.note(OpKind::PacketBodyCopy, Domain::Kernel, Layer::EtherOutput);
        // Outbound packet limiter (§3.4), if installed: the frame is
        // checked after the copy into the wired buffer, before it
        // reaches the device.
        {
            let mut k = this.borrow_mut();
            if let Some(limiter) = &k.tx_limiter {
                let out = limiter.run(&frame);
                charge.add_ns(Layer::EtherOutput, k.costs.filter_insn * out.steps as u64);
                charge.note(OpKind::FilterRun, Domain::Kernel, Layer::EtherOutput);
                if !out.accepted {
                    k.stats.tx_rejected += 1;
                    k.stats.drops.note(DropReason::TxLimited);
                    // Census-only: a transmit attempted while a received
                    // packet is current must not terminate that packet.
                    charge.count_drop(DropReason::TxLimited, Domain::Kernel);
                    charge.site_pop();
                    return;
                }
            }
        }
        charge.add_per_byte(Layer::EtherOutput, devw, frame.len());
        charge.note(OpKind::PacketBodyCopy, Domain::Kernel, Layer::EtherOutput);
        Kernel::enqueue_tx(this, sim, charge.at(), frame, true);
        charge.site_pop();
    }

    /// Installs (or clears) the outbound packet limiter: a filter
    /// program that every user-originated frame must satisfy. The §3.4
    /// extension — not part of the measured system, priced like the
    /// receive filter when enabled.
    pub fn set_tx_limiter(&mut self, program: Option<psd_filter::Program>) {
        self.tx_limiter = program;
    }

    /// Transmit for the in-kernel stack: the mbuf chain is already
    /// wired, so only the device copy is paid.
    pub fn send_from_kernel(
        this: &KernelHandle,
        sim: &mut Sim,
        charge: &mut Charge,
        frame: Vec<u8>,
    ) {
        let devw = this.borrow().costs.dev_write_byte;
        charge.site_push(Domain::Kernel, "tx");
        charge.add_per_byte(Layer::EtherOutput, devw, frame.len());
        charge.note(OpKind::PacketBodyCopy, Domain::Kernel, Layer::EtherOutput);
        Kernel::enqueue_tx(this, sim, charge.at(), frame, false);
        charge.site_pop();
    }

    /// Hands a fully charged frame to the wire at `ready`. Entirely
    /// event-scheduled, so it is safe to call from any context —
    /// including interrupt handlers where the kernel itself is
    /// currently borrowed.
    pub fn enqueue_tx(
        this: &KernelHandle,
        sim: &mut Sim,
        ready: SimTime,
        frame: Vec<u8>,
        from_user: bool,
    ) {
        let kernel = this.clone();
        sim.at(ready, move |sim| {
            let ether = {
                let mut k = kernel.borrow_mut();
                let Some(ether) = k.ether.clone() else {
                    // Detached from the segment (e.g. a fault between
                    // charge and handoff): the frame is dropped like any
                    // other wire loss, and the protocols recover.
                    k.stats.tx_disconnected += 1;
                    k.stats.drops.note(DropReason::TxDisconnected);
                    if let Some(c) = k.cpu.borrow().census() {
                        c.borrow_mut()
                            .note_drop(DropReason::TxDisconnected, Domain::Kernel);
                    }
                    return;
                };
                if from_user {
                    k.stats.tx_user += 1;
                } else {
                    k.stats.tx_kernel += 1;
                }
                ether
            };
            Ethernet::transmit(&ether, sim, sim.now(), frame);
        });
    }
}

impl Station for Kernel {
    fn mac(&self) -> EtherAddr {
        self.mac
    }

    fn frame_arrived(&mut self, sim: &mut Sim, frame: Vec<u8>) {
        self.stats.rx_frames += 1;
        let mut charge = self.cpu.borrow_mut().begin(sim.now());
        // The charge ends inside this function on every path, so the
        // site needs no balancing pop.
        charge.site_push(Domain::Kernel, "rx");
        // Field the interrupt.
        charge.trace_span_start(Stage::NicRx);
        charge.add_ns(Layer::DeviceIntrRead, self.costs.intr_dispatch);
        charge.note(OpKind::Interrupt, Domain::Kernel, Layer::DeviceIntrRead);
        if self.costs.intr_penalty > 0 {
            charge.add_ns(Layer::DeviceIntrRead, self.costs.intr_penalty);
        }

        // Injected receive fault: the frame is lost at the interface,
        // after wire delivery but before demultiplexing. Protocols see
        // it as ordinary loss and recover by retransmission.
        if charge.fault(FaultSite::NicRx) {
            self.stats.rx_faulted += 1;
            self.stats.drops.note(DropReason::FaultInjected);
            charge.trace_event("fault:nic-rx");
            charge.trace_drop(DropReason::FaultInjected, Domain::Kernel);
            let cpu = self.cpu.clone();
            cpu.borrow_mut().finish(charge);
            return;
        }

        // Classify. The in-kernel endpoint short-circuits the filter:
        // the monolithic kernel demuxes with a pcb lookup after copying
        // the packet out of the device.
        let default = self.default_endpoint;
        let inkernel_sink = default
            .and_then(|id| self.endpoints.get(&id))
            .and_then(|ep| match (&ep.sink, ep.mode) {
                (Sink::InKernel(sink), RxMode::InKernel) => Some(sink.clone()),
                _ => None,
            });

        if self.demux.is_empty() {
            if let Some(sink) = inkernel_sink {
                // Copy device → wired kernel buffer at interrupt level.
                charge.add_ns(Layer::DeviceIntrRead, self.costs.rx_kbuf_setup);
                charge.add_per_byte(Layer::DeviceIntrRead, self.costs.dev_read_byte, frame.len());
                charge.note(
                    OpKind::PacketBodyCopy,
                    Domain::Kernel,
                    Layer::DeviceIntrRead,
                );
                charge.trace_span_end(Stage::NicRx);
                // netisr dispatch + in-kernel demux.
                charge.trace_span_start(Stage::FilterRun);
                charge.add_ns(Layer::NetisrPacketFilter, self.costs.netisr);
                charge.add_ns(Layer::NetisrPacketFilter, self.costs.pcb_lookup);
                charge.trace_span_end(Stage::FilterRun);
                self.stats.rx_default += 1;
                // Synchronous input at interrupt level, same charge. The
                // delivery span is closed by the packet's terminal state
                // inside the stack.
                charge.trace_span_start(Stage::DeliverInKernel);
                sink.borrow_mut()(sim, &mut charge, frame);
                let cpu = self.cpu.clone();
                cpu.borrow_mut().finish(charge);
                return;
            }
        }

        // Filtered paths. Does any installed session filter use the
        // integrated (IPF) discipline? If so the classification runs on
        // the packet header in device memory and the body copy is
        // deferred; otherwise the whole packet is first copied into a
        // kernel buffer (§4.1).
        let any_ipf = self.ipf_endpoints > 0;
        if !any_ipf {
            charge.add_ns(Layer::DeviceIntrRead, self.costs.rx_kbuf_setup);
            charge.add_per_byte(Layer::DeviceIntrRead, self.costs.dev_read_byte, frame.len());
            charge.note(
                OpKind::PacketBodyCopy,
                Domain::Kernel,
                Layer::DeviceIntrRead,
            );
        }
        charge.trace_span_end(Stage::NicRx);

        charge.trace_span_start(Stage::FilterRun);
        charge.add_ns(Layer::NetisrPacketFilter, self.costs.netisr);
        let result = self.demux.classify(&frame);
        self.stats.filter_steps += result.steps as u64;
        charge.add_ns(
            Layer::NetisrPacketFilter,
            self.costs.filter_insn * result.steps as u64,
        );
        if !self.demux.is_empty() {
            charge.note(OpKind::FilterRun, Domain::Kernel, Layer::NetisrPacketFilter);
        }
        if let Some((_, owner)) = result.owner {
            // Per-session attribution: only the session the packet is
            // destined for is ever counted — the isolation the packet
            // filter provides (§3.4).
            charge.note_scoped(OpKind::FilterRun, owner.0, 1);
        }
        charge.trace_span_end(Stage::FilterRun);

        let target = match result.owner {
            Some((_, id)) => {
                self.stats.rx_session += 1;
                Some(id)
            }
            None => {
                if default.is_some() {
                    self.stats.rx_default += 1;
                } else {
                    self.stats.rx_unclaimed += 1;
                }
                default
            }
        };
        let Some(id) = target else {
            // No session filter matched and no default endpoint exists.
            self.stats.drops.note(DropReason::FilterMiss);
            charge.trace_drop(DropReason::FilterMiss, Domain::Kernel);
            let cpu = self.cpu.clone();
            cpu.borrow_mut().finish(charge);
            return;
        };
        if !self.endpoints.contains_key(&id) {
            // The endpoint was destroyed while the frame was in flight.
            self.stats.drops.note(DropReason::EndpointDead);
            charge.trace_drop(DropReason::EndpointDead, Domain::Kernel);
            let cpu = self.cpu.clone();
            cpu.borrow_mut().finish(charge);
            return;
        }
        // GRO gate: with coalescing on, eligible TCP data segments are
        // absorbed into a held per-endpoint descriptor and delivered as
        // one frame when the run closes (batch full, boundary segment,
        // or deadline). Off (the default) this is a dead branch.
        let frame = if self.batch.gro && self.batch.batch > 1 {
            match self.gro_ingest(sim, &mut charge, id, frame) {
                Some(frame) => frame,
                None => {
                    let cpu = self.cpu.clone();
                    cpu.borrow_mut().finish(charge);
                    return;
                }
            }
        } else {
            frame
        };
        self.deliver_endpoint(sim, &mut charge, id, frame);
        let cpu = self.cpu.clone();
        cpu.borrow_mut().finish(charge);
    }
}

impl Kernel {
    /// Delivers a classified frame to its endpoint. With batching off
    /// and no placement policy this is byte-for-byte the pre-batching
    /// delivery path; otherwise the first descriptor of each window of
    /// `batch` pays the ring crossing and the wakeup (the doorbell
    /// amortization) and kernel-resident flows materialize only their
    /// headers in the ring.
    fn deliver_endpoint(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        id: EndpointId,
        frame: Vec<u8>,
    ) {
        let default = self.default_endpoint;
        let (mode, pay) = {
            let Some(ep) = self.endpoints.get_mut(&id) else {
                // The endpoint vanished between classify and delivery —
                // only reachable from a deferred GRO flush racing a
                // migration. Re-present the frame so the classify path
                // finds the session's new owner instead of dropping it.
                let me = self.me.clone();
                let at = charge.at();
                let (tracer, tid) = trace_ctx(charge);
                sim.at(at, move |sim| {
                    let Some(kernel) = me.upgrade() else { return };
                    let now = sim.now();
                    if let (Some(tr), Some(pkt)) = (&tracer, tid) {
                        tr.borrow_mut().event(pkt, now, "requeued");
                        tr.borrow_mut().push_current(pkt);
                    }
                    kernel.borrow_mut().frame_arrived(sim, frame);
                    if tid.is_some() {
                        if let Some(tr) = &tracer {
                            tr.borrow_mut().pop_current();
                        }
                    }
                });
                return;
            };
            // Doorbell amortization: the first descriptor of a batch
            // window pays the crossing and wakeup, the rest ride it.
            let pay = if ep.mode == RxMode::InKernel || self.batch.batch <= 1 {
                ep.batch_credit = 0;
                true
            } else if ep.batch_credit > 0 {
                ep.batch_credit -= 1;
                false
            } else {
                ep.batch_credit = self.batch.batch - 1;
                true
            };
            (ep.mode, pay)
        };
        charge.site_push(Domain::Kernel, "deliver");
        // Delivery crossings are attributed to the domain being entered:
        // the default endpoint is the operating system server, session
        // endpoints belong to applications.
        let entered = if Some(id) == default {
            Domain::Server
        } else {
            Domain::Library
        };
        if pay && mode != RxMode::InKernel {
            self.stats.rx_delivery_crossings += 1;
            if entered == Domain::Library {
                self.stats.rx_session_crossings += 1;
            }
        }
        // Selective-copy placement: kernel-resident session flows put
        // only their headers in the ring; the body stays in kernel
        // memory behind a pull handle.
        let placement = if mode == RxMode::InKernel {
            CopyPlacement::Eager
        } else {
            match (entered, self.endpoints[&id].filter) {
                (Domain::Library, Some(f)) => self.demux.placement(f),
                _ => CopyPlacement::Eager,
            }
        };
        let span = match placement {
            CopyPlacement::Eager => frame.len(),
            CopyPlacement::KernelResident => {
                self.stats.header_only_deliveries += 1;
                header_span(&frame)
            }
        };
        let copy_kind = match placement {
            CopyPlacement::Eager => OpKind::PacketBodyCopy,
            CopyPlacement::KernelResident => OpKind::HeaderCopy,
        };

        match mode {
            RxMode::InKernel => {
                // A session filter targeted the in-kernel stack (mixed
                // configurations): same synchronous treatment, but the
                // device copy was already made above.
                charge.trace_span_start(Stage::DeliverInKernel);
                let sink = match &self.endpoints[&id].sink {
                    Sink::InKernel(sink) => Some(sink.clone()),
                    Sink::Async(_) => None,
                };
                if let Some(sink) = sink {
                    sink.borrow_mut()(sim, charge, frame);
                }
            }
            RxMode::Ipc => {
                // One IPC message per packet window: copy into the
                // message and out in the receiver, plus a scheduling
                // wakeup for the window's first descriptor.
                charge.trace_span_start(Stage::DeliverIpc);
                if pay {
                    charge.crossing_in(
                        entered,
                        Layer::KernelCopyout,
                        SimTime::from_nanos(self.costs.ipc_oneway),
                    );
                }
                charge.add_per_byte(Layer::KernelCopyout, self.costs.kcopy_cached_byte, span);
                charge.note(copy_kind, Domain::Kernel, Layer::KernelCopyout);
                if pay {
                    charge.add_ns(Layer::KernelCopyout, self.costs.sched_wakeup);
                    charge.note(OpKind::Wakeup, Domain::Kernel, Layer::KernelCopyout);
                }
                charge.trace_span_end(Stage::DeliverIpc);
                let sink = match &self.endpoints[&id].sink {
                    Sink::Async(sink) => Some(sink.clone()),
                    Sink::InKernel(_) => None,
                };
                if let Some(sink) = sink {
                    let at = charge.at();
                    let (tracer, tid) = trace_ctx(charge);
                    let ring = self.ring_occupancy.clone();
                    ring.set(ring.get() + 1);
                    sim.at(at, move |sim| {
                        ring.set(ring.get() - 1);
                        if let (Some(tr), Some(pkt)) = (&tracer, tid) {
                            tr.borrow_mut().push_current(pkt);
                        }
                        let t = sim.now();
                        sink.borrow_mut()(sim, t, frame);
                        if tid.is_some() {
                            if let Some(tr) = &tracer {
                                tr.borrow_mut().pop_current();
                            }
                        }
                    });
                }
            }
            RxMode::Shm | RxMode::ShmIpf => {
                charge.trace_span_start(if mode == RxMode::ShmIpf {
                    Stage::DeliverShmIpf
                } else {
                    Stage::DeliverShmRing
                });
                if mode == RxMode::ShmIpf {
                    // Deferred single copy: device memory → shared ring.
                    // No wired kernel buffer is set up — that is the
                    // point of the integrated filter; only the ring
                    // descriptor is allocated.
                    if pay {
                        charge.crossing_in(
                            entered,
                            Layer::KernelCopyout,
                            SimTime::from_nanos(self.costs.mbuf_alloc * 2),
                        );
                    }
                    charge.add_per_byte(Layer::KernelCopyout, self.costs.dev_read_byte, span);
                    charge.note(copy_kind, Domain::Kernel, Layer::KernelCopyout);
                } else {
                    // Second copy: kernel buffer → shared ring. The
                    // source is cache-warm kernel memory.
                    if pay {
                        charge.crossing_in(
                            entered,
                            Layer::KernelCopyout,
                            SimTime::from_nanos(self.costs.mbuf_alloc),
                        );
                    }
                    charge.add_per_byte(Layer::KernelCopyout, self.costs.kcopy_cached_byte, span);
                    charge.note(copy_kind, Domain::Kernel, Layer::KernelCopyout);
                }
                charge.trace_span_end(if mode == RxMode::ShmIpf {
                    Stage::DeliverShmIpf
                } else {
                    Stage::DeliverShmRing
                });
                // The wakeup decision must be taken when the data lands
                // in the ring, after earlier deliveries have advanced
                // the thread's busy window — so it is deferred into an
                // event rather than decided with the stale state
                // visible at interrupt time.
                let ready = charge.at();
                let me = self.me.clone();
                let (tracer, tid) = trace_ctx(charge);
                let ring = self.ring_occupancy.clone();
                ring.set(ring.get() + 1);
                sim.at(ready, move |sim| {
                    let Some(kernel) = me.upgrade() else { return };
                    let now = sim.now();
                    // This event runs after `frame_arrived` returned, so
                    // re-borrowing the kernel here cannot conflict.
                    let deliver = {
                        let mut k = kernel.borrow_mut();
                        let sched_wakeup = k.costs.sched_wakeup;
                        let cpu = k.cpu.clone();
                        match k.endpoints.get(&id).map(|e| e.thread_busy_until) {
                            None => None,
                            Some(busy_until) => {
                                let at;
                                if !pay {
                                    // This descriptor rides the doorbell
                                    // its window's first descriptor
                                    // paid: no wakeup, no amortization
                                    // stat — the thread finds it on its
                                    // next ring scan.
                                    at = busy_until.max(now);
                                } else if now >= busy_until {
                                    // The network thread is idle: signal
                                    // it (condition variable +
                                    // scheduling).
                                    if let (Some(tr), Some(pkt)) = (&tracer, tid) {
                                        tr.borrow_mut().push_current(pkt);
                                    }
                                    let mut c = cpu.borrow_mut().begin(now);
                                    c.add_ns(Layer::KernelCopyout, sched_wakeup);
                                    c.note(OpKind::Wakeup, Domain::Kernel, Layer::KernelCopyout);
                                    at = cpu.borrow_mut().finish(c);
                                    if tid.is_some() {
                                        if let Some(tr) = &tracer {
                                            tr.borrow_mut().pop_current();
                                        }
                                    }
                                    if let Some(ep) = k.endpoints.get_mut(&id) {
                                        ep.thread_busy_until = at;
                                    }
                                } else {
                                    // Thread still draining the ring: it
                                    // picks this packet up with no
                                    // further scheduling — the
                                    // amortization the SHM interface
                                    // exists for.
                                    at = busy_until;
                                    k.stats.wakeups_amortized += 1;
                                }
                                let Some(ep) = k.endpoints.get(&id) else {
                                    return;
                                };
                                let Sink::Async(sink) = &ep.sink else { return };
                                Some((sink.clone(), at))
                            }
                        }
                    };
                    match deliver {
                        Some((sink, at)) => {
                            let tracer = tracer.clone();
                            sim.at(at, move |sim| {
                                ring.set(ring.get() - 1);
                                if let (Some(tr), Some(pkt)) = (&tracer, tid) {
                                    tr.borrow_mut().push_current(pkt);
                                }
                                let t = sim.now();
                                sink.borrow_mut()(sim, t, frame);
                                if tid.is_some() {
                                    if let Some(tr) = &tracer {
                                        tr.borrow_mut().pop_current();
                                    }
                                }
                            });
                        }
                        None => {
                            // The endpoint died while the packet sat in
                            // the ring (its session migrated back
                            // mid-flight). The filter is gone with it,
                            // so re-presenting the frame lets the
                            // classify path find the session's new
                            // owner instead of leaking the packet.
                            ring.set(ring.get() - 1);
                            if let (Some(tr), Some(pkt)) = (&tracer, tid) {
                                tr.borrow_mut().event(pkt, now, "requeued");
                                tr.borrow_mut().push_current(pkt);
                            }
                            kernel.borrow_mut().frame_arrived(sim, frame);
                            if tid.is_some() {
                                if let Some(tr) = &tracer {
                                    tr.borrow_mut().pop_current();
                                }
                            }
                        }
                    }
                });
            }
        }
        charge.site_pop();
    }

    /// GRO admission: returns the frame to deliver now, or `None` if it
    /// was absorbed into (or started) a held per-endpoint descriptor.
    /// Coalescing is confined to eligible TCP data segments on eager
    /// session flows; everything else flushes any held run (preserving
    /// in-flow delivery order) and takes the normal path.
    fn gro_ingest(
        &mut self,
        sim: &mut Sim,
        charge: &mut Charge,
        id: EndpointId,
        frame: Vec<u8>,
    ) -> Option<Vec<u8>> {
        if Some(id) == self.default_endpoint {
            return Some(frame);
        }
        let Some(ep) = self.endpoints.get(&id) else {
            return Some(frame);
        };
        if ep.mode == RxMode::InKernel {
            return Some(frame);
        }
        // Kernel-resident flows deliver headers only; coalescing bodies
        // that will never be materialized buys nothing and would change
        // the pull handle's framing.
        if let Some(f) = ep.filter {
            if self.demux.placement(f) == CopyPlacement::KernelResident {
                self.gro_flush_sync(sim, charge, id);
                return Some(frame);
            }
        }
        let Some(seg) = gro_parse(&frame) else {
            self.gro_flush_sync(sim, charge, id);
            return Some(frame);
        };
        // The admission checksum walk is real work, charged where the
        // netisr runs. (The stack will not checksum the synthesized
        // frame again for the merged segments — this charge replaces
        // it.)
        charge.add_per_byte(
            Layer::NetisrPacketFilter,
            self.costs.checksum_byte,
            seg.tcp_len,
        );
        charge.note(OpKind::Checksum, Domain::Kernel, Layer::NetisrPacketFilter);
        let fits = self.gro.get(&id).is_some_and(|slot| {
            slot.flow == seg.flow()
                && seg.tcp.seq == slot.next_seq
                && slot.count < self.batch.batch
                && ETHER_HDR_LEN
                    + IPV4_HDR_LEN
                    + slot.tcp.header_len()
                    + slot.payload.len()
                    + seg.payload.len()
                    <= GRO_MAX_FRAME
        });
        if fits {
            let slot = self.gro.get_mut(&id).expect("checked above");
            slot.payload.extend_from_slice(&seg.payload);
            slot.tcp.ack = seg.tcp.ack;
            slot.tcp.window = seg.tcp.window;
            slot.next_seq = slot.next_seq.wrapping_add(seg.payload.len() as u32);
            slot.count += 1;
            let full = slot.count >= self.batch.batch;
            self.stats.gro_merged += 1;
            charge.trace_event("gro-merge");
            charge.trace_absorbed();
            if full {
                self.gro_flush_sync(sim, charge, id);
            }
            return None;
        }
        if self.gro.contains_key(&id) {
            // Same endpoint, unmergeable segment (gap, different flow,
            // or a full descriptor): close the held run first.
            self.gro_flush_sync(sim, charge, id);
        }
        // Start a new run and arm its flush deadline.
        self.gro_gen += 1;
        let generation = self.gro_gen;
        let (tracer, tid) = trace_ctx(charge);
        let next_seq = seg.tcp.seq.wrapping_add(seg.payload.len() as u32);
        self.gro.insert(
            id,
            GroSlot {
                flow: seg.flow(),
                eth: seg.eth,
                ip: seg.ip,
                tcp: seg.tcp,
                payload: seg.payload,
                next_seq,
                count: 1,
                generation,
                tracer,
                tid,
            },
        );
        self.stats.gro_held += 1;
        charge.trace_event("gro-hold");
        let me = self.me.clone();
        let deadline = charge.at() + SimTime::from_micros(GRO_FLUSH_DELAY_US);
        sim.at(deadline, move |sim| {
            Kernel::gro_deadline(&me, sim, id, generation);
        });
        None
    }

    /// Flushes the endpoint's held GRO descriptor (if any) into the
    /// normal delivery path under the current charge, re-establishing
    /// the held packet's tracing context.
    fn gro_flush_sync(&mut self, sim: &mut Sim, charge: &mut Charge, id: EndpointId) {
        let Some(slot) = self.gro.remove(&id) else {
            return;
        };
        self.stats.gro_flushes += 1;
        let frame = slot.synthesize();
        if let (Some(tr), Some(pkt)) = (&slot.tracer, slot.tid) {
            tr.borrow_mut().push_current(pkt);
        }
        charge.trace_event("gro-flush");
        self.deliver_endpoint(sim, charge, id, frame);
        if slot.tid.is_some() {
            if let Some(tr) = &slot.tracer {
                tr.borrow_mut().pop_current();
            }
        }
    }

    /// The deadline event for a held GRO descriptor: flushes it if the
    /// same run is still held (generation match). If the endpoint died
    /// while the descriptor was held, the synthesized frame is
    /// re-presented to the classify path so the session's new owner
    /// receives it exactly once.
    fn gro_deadline(
        me: &std::rc::Weak<RefCell<Kernel>>,
        sim: &mut Sim,
        id: EndpointId,
        generation: u64,
    ) {
        let Some(kernel) = me.upgrade() else { return };
        let (slot, cpu, alive) = {
            let mut k = kernel.borrow_mut();
            match k.gro.get(&id) {
                Some(slot) if slot.generation == generation => {}
                _ => return,
            }
            let slot = k.gro.remove(&id).expect("checked above");
            let alive = k.endpoints.contains_key(&id);
            if alive {
                k.stats.gro_flushes += 1;
            } else {
                k.stats.gro_requeued += 1;
            }
            (slot, k.cpu.clone(), alive)
        };
        let frame = slot.synthesize();
        let now = sim.now();
        if alive {
            if let (Some(tr), Some(pkt)) = (&slot.tracer, slot.tid) {
                tr.borrow_mut().push_current(pkt);
            }
            let mut charge = cpu.borrow_mut().begin(now);
            charge.trace_event("gro-flush");
            kernel
                .borrow_mut()
                .deliver_endpoint(sim, &mut charge, id, frame);
            cpu.borrow_mut().finish(charge);
        } else {
            // The endpoint died while the run was held: re-present the
            // synthesized frame so demultiplexing finds the session's
            // new owner (the PR 1 reclaim discipline, under batching).
            if let (Some(tr), Some(pkt)) = (&slot.tracer, slot.tid) {
                tr.borrow_mut().event(pkt, now, "requeued");
                tr.borrow_mut().push_current(pkt);
            }
            kernel.borrow_mut().frame_arrived(sim, frame);
        }
        if slot.tid.is_some() {
            if let Some(tr) = &slot.tracer {
                tr.borrow_mut().pop_current();
            }
        }
    }
}

/// Reports how long the endpoint's network thread will stay busy, used
/// by library receive paths to extend the amortization window while
/// they process a packet.
pub fn note_thread_busy(kernel: &KernelHandle, id: EndpointId, until: SimTime) {
    if let Some(ep) = kernel.borrow_mut().endpoints.get_mut(&id) {
        if until > ep.thread_busy_until {
            ep.thread_busy_until = until;
        }
    }
}

/// Charges the cost of a Mach RPC that moves `data_len` bytes of socket
/// data between an application and the operating system server. The
/// paper counts four physical copies on this path (§4.3 entry/copyin:
/// user buffer → IPC message → kernel → server IPC buffer → mbuf
/// chain); the final copy into/out of the mbuf chain is charged by the
/// socket layer itself, so three are priced here, plus the trap and the
/// RPC machinery.
pub fn rpc_data_charge(costs: &CostModel, charge: &mut Charge, layer: Layer, data_len: usize) {
    // One RPC = two boundary crossings on the census (request into the
    // server, reply back to the caller); the probe keeps its single
    // Table 4 asterisk per charged crossing.
    charge.crossing_in(Domain::Server, layer, SimTime::from_nanos(costs.trap));
    charge.note(OpKind::BoundaryCrossing, Domain::Library, layer);
    charge.add_ns(layer, costs.rpc_base);
    charge.add_per_byte(layer, costs.ipc_copy_byte * 3, data_len);
    charge.note(OpKind::PacketBodyCopy, Domain::Library, layer);
    charge.note(OpKind::PacketBodyCopy, Domain::Kernel, layer);
    charge.note(OpKind::PacketBodyCopy, Domain::Server, layer);
}

/// Charges a control-path RPC (no bulk data): proxy calls such as
/// `proxy_socket`, `proxy_bind`, `proxy_status`.
pub fn rpc_control_charge(costs: &CostModel, charge: &mut Charge, req_reply_len: usize) {
    charge.crossing_in(
        Domain::Server,
        Layer::Control,
        SimTime::from_nanos(costs.trap),
    );
    charge.note(OpKind::BoundaryCrossing, Domain::Library, Layer::Control);
    charge.add_ns(Layer::Control, costs.rpc_base);
    charge.add_per_byte(Layer::Control, costs.ipc_copy_byte * 4, req_reply_len);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Captured `(delivery time, frame)` log shared with a sink.
    type DeliveryLog = Rc<RefCell<Vec<(SimTime, Vec<u8>)>>>;
    use psd_wire::{EtherType, EthernetHeader, IpProto, Ipv4Header, UdpHeader, UDP_HDR_LEN};
    use std::net::Ipv4Addr;

    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn udp_frame(dst_mac: EtherAddr, dst: (Ipv4Addr, u16), payload_len: usize) -> Vec<u8> {
        let ip = Ipv4Header::new(A_IP, dst.0, IpProto::Udp, UDP_HDR_LEN + payload_len);
        let udp = UdpHeader::new(999, dst.1, payload_len);
        let eth = EthernetHeader {
            dst: dst_mac,
            src: EtherAddr::local(1),
            ethertype: EtherType::Ipv4,
        };
        let mut f = eth.encode().to_vec();
        f.extend_from_slice(&ip.encode());
        f.extend_from_slice(&udp.encode());
        f.extend_from_slice(&vec![0xAAu8; payload_len]);
        f
    }

    struct Rig {
        sim: Sim,
        ether: EthernetHandle,
        kernel: KernelHandle,
    }

    fn rig() -> Rig {
        let mut sim = Sim::new(1);
        let ether = Ethernet::ten_megabit(&mut sim);
        let cpu = Rc::new(RefCell::new(Cpu::new()));
        let kernel = Kernel::new(CostModel::decstation_5000_200(), cpu, EtherAddr::local(2));
        Kernel::connect(&kernel, &ether);
        Rig { sim, ether, kernel }
    }

    fn collect_sink() -> (PacketSink, DeliveryLog) {
        let log: DeliveryLog = Rc::new(RefCell::new(Vec::new()));
        let l2 = log.clone();
        let sink: PacketSink = Rc::new(RefCell::new(move |_: &mut Sim, t: SimTime, f: Vec<u8>| {
            l2.borrow_mut().push((t, f));
        }));
        (sink, log)
    }

    #[test]
    fn session_filter_routes_to_endpoint() {
        let mut r = rig();
        let (sink, log) = collect_sink();
        let (def_sink, def_log) = collect_sink();
        {
            let mut k = r.kernel.borrow_mut();
            let ep = k.create_endpoint(RxMode::Ipc, sink);
            let def = k.create_endpoint(RxMode::Ipc, def_sink);
            k.set_default_endpoint(def);
            k.install_filter(EndpointSpec::unconnected(IpProto::Udp, B_IP, 7000), ep)
                .unwrap();
        }
        let f = udp_frame(EtherAddr::local(2), (B_IP, 7000), 10);
        Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        r.sim.run_to_idle();
        assert_eq!(log.borrow().len(), 1);
        assert_eq!(def_log.borrow().len(), 0);
        let stats = r.kernel.borrow().stats();
        assert_eq!(stats.rx_session, 1);
        assert_eq!(stats.rx_default, 0);
    }

    #[test]
    fn unclaimed_packets_go_to_default() {
        let mut r = rig();
        let (def_sink, def_log) = collect_sink();
        {
            let mut k = r.kernel.borrow_mut();
            let def = k.create_endpoint(RxMode::Ipc, def_sink);
            k.set_default_endpoint(def);
        }
        let f = udp_frame(EtherAddr::local(2), (B_IP, 12345), 10);
        Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        r.sim.run_to_idle();
        assert_eq!(def_log.borrow().len(), 1);
        assert_eq!(r.kernel.borrow().stats().rx_default, 1);
    }

    #[test]
    fn unclaimed_without_default_dropped() {
        let mut r = rig();
        let f = udp_frame(EtherAddr::local(2), (B_IP, 1), 10);
        Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        r.sim.run_to_idle();
        assert_eq!(r.kernel.borrow().stats().rx_unclaimed, 1);
    }

    #[test]
    fn security_isolation_between_endpoints() {
        // An application's endpoint must never receive another
        // session's packets (§3.4: "The kernel's packet filter ensures
        // that an application can only receive packets that are
        // destined for it").
        let mut r = rig();
        let (sink_a, log_a) = collect_sink();
        let (sink_b, log_b) = collect_sink();
        {
            let mut k = r.kernel.borrow_mut();
            let ep_a = k.create_endpoint(RxMode::Ipc, sink_a);
            let ep_b = k.create_endpoint(RxMode::Ipc, sink_b);
            k.install_filter(EndpointSpec::unconnected(IpProto::Udp, B_IP, 1000), ep_a)
                .unwrap();
            k.install_filter(EndpointSpec::unconnected(IpProto::Udp, B_IP, 2000), ep_b)
                .unwrap();
        }
        for port in [1000u16, 1000, 2000] {
            let now = r.sim.now();
            let f = udp_frame(EtherAddr::local(2), (B_IP, port), 5);
            Ethernet::transmit(&r.ether, &mut r.sim, now, f);
            r.sim.run_to_idle();
        }
        assert_eq!(log_a.borrow().len(), 2);
        assert_eq!(log_b.borrow().len(), 1);
    }

    #[test]
    fn retarget_filter_moves_session_atomically() {
        let mut r = rig();
        let (sink_srv, log_srv) = collect_sink();
        let (sink_app, log_app) = collect_sink();
        let fid;
        let ep_app;
        {
            let mut k = r.kernel.borrow_mut();
            let ep_srv = k.create_endpoint(RxMode::Ipc, sink_srv);
            ep_app = k.create_endpoint(RxMode::Ipc, sink_app);
            fid = k
                .install_filter(EndpointSpec::unconnected(IpProto::Udp, B_IP, 9), ep_srv)
                .unwrap();
        }
        let f = udp_frame(EtherAddr::local(2), (B_IP, 9), 1);
        Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f.clone());
        r.sim.run_to_idle();
        r.kernel.borrow_mut().retarget_filter(fid, ep_app);
        let now = r.sim.now();
        Ethernet::transmit(&r.ether, &mut r.sim, now, f);
        r.sim.run_to_idle();
        assert_eq!(log_srv.borrow().len(), 1);
        assert_eq!(log_app.borrow().len(), 1);
    }

    #[test]
    fn shm_amortizes_wakeups_for_packet_trains() {
        let mut r = rig();
        // The sink models a network thread that takes 500 µs to process
        // each packet, reporting its busy window back to the kernel so
        // that arrivals during processing skip the wakeup.
        let log: DeliveryLog = Rc::new(RefCell::new(Vec::new()));
        let ep_cell: Rc<std::cell::Cell<Option<EndpointId>>> = Rc::new(std::cell::Cell::new(None));
        let kernel2 = r.kernel.clone();
        let log2 = log.clone();
        let ep2 = ep_cell.clone();
        let sink: PacketSink = Rc::new(RefCell::new(move |_: &mut Sim, t: SimTime, f: Vec<u8>| {
            log2.borrow_mut().push((t, f));
            if let Some(id) = ep2.get() {
                note_thread_busy(&kernel2, id, t + SimTime::from_micros(500));
            }
        }));
        {
            let mut k = r.kernel.borrow_mut();
            let ep = k.create_endpoint(RxMode::Shm, sink);
            ep_cell.set(Some(ep));
            k.install_filter(EndpointSpec::unconnected(IpProto::Udp, B_IP, 7), ep)
                .unwrap();
        }
        // A train of back-to-back frames: the wire serializes them
        // ~60 µs apart while the first delivery reserves the thread.
        for _ in 0..5 {
            let f = udp_frame(EtherAddr::local(2), (B_IP, 7), 1);
            Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        }
        r.sim.run_to_idle();
        assert_eq!(log.borrow().len(), 5);
        let stats = r.kernel.borrow().stats();
        assert!(
            stats.wakeups_amortized >= 3,
            "expected amortized wakeups, got {}",
            stats.wakeups_amortized
        );
    }

    #[test]
    fn ipc_mode_never_amortizes() {
        let mut r = rig();
        let (sink, log) = collect_sink();
        {
            let mut k = r.kernel.borrow_mut();
            let ep = k.create_endpoint(RxMode::Ipc, sink);
            k.install_filter(EndpointSpec::unconnected(IpProto::Udp, B_IP, 7), ep)
                .unwrap();
        }
        for _ in 0..5 {
            let f = udp_frame(EtherAddr::local(2), (B_IP, 7), 1);
            Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        }
        r.sim.run_to_idle();
        assert_eq!(log.borrow().len(), 5);
        assert_eq!(r.kernel.borrow().stats().wakeups_amortized, 0);
    }

    #[test]
    fn ipf_defers_device_copy() {
        // With an IPF endpoint installed, DeviceIntrRead must be flat
        // (no per-byte device read at interrupt time); the body copy is
        // charged to KernelCopyout instead.
        use psd_sim::LatencyProbe;
        let mut r = rig();
        let probe = LatencyProbe::shared();
        r.kernel
            .borrow()
            .cpu()
            .borrow_mut()
            .set_probe(Some(probe.clone()));
        let (sink, _log) = collect_sink();
        {
            let mut k = r.kernel.borrow_mut();
            let ep = k.create_endpoint(RxMode::ShmIpf, sink);
            k.install_filter(EndpointSpec::unconnected(IpProto::Udp, B_IP, 7), ep)
                .unwrap();
        }
        let f = udp_frame(EtherAddr::local(2), (B_IP, 7), 1400);
        Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        r.sim.run_to_idle();
        let p = probe.borrow();
        let intr = p.layer(Layer::DeviceIntrRead).total;
        let copyout = p.layer(Layer::KernelCopyout).total;
        let costs = CostModel::decstation_5000_200();
        assert!(
            intr < SimTime::from_nanos(costs.intr_dispatch + 20_000),
            "interrupt path should be flat, was {intr}"
        );
        assert!(
            copyout > SimTime::from_nanos(costs.dev_read_byte * 1400),
            "body copy belongs to copyout, was {copyout}"
        );
    }

    #[test]
    fn send_from_user_charges_trap_and_copies() {
        use psd_sim::LatencyProbe;
        let mut r = rig();
        let probe = LatencyProbe::shared();
        let cpu = r.kernel.borrow().cpu();
        cpu.borrow_mut().set_probe(Some(probe.clone()));
        let frame = udp_frame(EtherAddr::local(9), (B_IP, 7), 100);
        let flen = frame.len();
        let mut charge = cpu.borrow_mut().begin(r.sim.now());
        Kernel::send_from_user(&r.kernel, &mut r.sim, &mut charge, frame);
        cpu.borrow_mut().finish(charge);
        r.sim.run_to_idle();
        let costs = CostModel::decstation_5000_200();
        let expect = costs.trap + (costs.kcopy_byte + costs.dev_write_byte) * flen as u64;
        let p = probe.borrow();
        assert_eq!(
            p.layer(Layer::EtherOutput).total,
            SimTime::from_nanos(expect)
        );
        assert_eq!(p.layer(Layer::EtherOutput).crossings, 1);
        assert_eq!(r.kernel.borrow().stats().tx_user, 1);
        assert_eq!(r.ether.borrow().stats().tx_frames, 1);
    }

    #[test]
    fn send_from_kernel_skips_trap() {
        use psd_sim::LatencyProbe;
        let mut r = rig();
        let probe = LatencyProbe::shared();
        let cpu = r.kernel.borrow().cpu();
        cpu.borrow_mut().set_probe(Some(probe.clone()));
        let frame = udp_frame(EtherAddr::local(9), (B_IP, 7), 100);
        let flen = frame.len();
        let mut charge = cpu.borrow_mut().begin(r.sim.now());
        Kernel::send_from_kernel(&r.kernel, &mut r.sim, &mut charge, frame);
        cpu.borrow_mut().finish(charge);
        r.sim.run_to_idle();
        let costs = CostModel::decstation_5000_200();
        let p = probe.borrow();
        assert_eq!(
            p.layer(Layer::EtherOutput).total,
            SimTime::from_nanos(costs.dev_write_byte * flen as u64)
        );
        assert_eq!(p.layer(Layer::EtherOutput).crossings, 0);
    }

    #[test]
    fn inkernel_endpoint_runs_in_interrupt_charge() {
        let mut r = rig();
        let seen: Rc<RefCell<Vec<usize>>> = Rc::new(RefCell::new(Vec::new()));
        let s2 = seen.clone();
        let sink: InKernelSink = Rc::new(RefCell::new(
            move |_: &mut Sim, charge: &mut Charge, f: Vec<u8>| {
                charge.add_ns(Layer::TcpUdpInput, 1000);
                s2.borrow_mut().push(f.len());
            },
        ));
        {
            let mut k = r.kernel.borrow_mut();
            let ep = k.create_inkernel_endpoint(sink);
            k.set_default_endpoint(ep);
        }
        let f = udp_frame(EtherAddr::local(2), (B_IP, 7), 64);
        Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        r.sim.run_to_idle();
        assert_eq!(seen.borrow().len(), 1);
    }

    #[test]
    fn destroy_endpoint_removes_filter() {
        let mut r = rig();
        let (sink, log) = collect_sink();
        let ep = {
            let mut k = r.kernel.borrow_mut();
            let ep = k.create_endpoint(RxMode::Ipc, sink);
            k.install_filter(EndpointSpec::unconnected(IpProto::Udp, B_IP, 7), ep)
                .unwrap();
            ep
        };
        r.kernel.borrow_mut().destroy_endpoint(ep);
        let f = udp_frame(EtherAddr::local(2), (B_IP, 7), 1);
        Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        r.sim.run_to_idle();
        assert_eq!(log.borrow().len(), 0);
        assert_eq!(r.kernel.borrow().stats().rx_unclaimed, 1);
    }

    #[test]
    fn tx_limiter_rejects_disallowed_frames() {
        let mut r = rig();
        // Only IPv4 frames sourced from 10.0.0.2 may leave (an
        // anti-spoofing policy).
        let program = {
            use psd_filter::{Binop, Insn};
            psd_filter::Program::new(vec![
                Insn::PushWord(12),
                Insn::PushLit(0x0800),
                Insn::CombineAnd(Binop::Eq),
                Insn::PushWord(26),
                Insn::PushLit(0x0A00),
                Insn::CombineAnd(Binop::Eq),
                Insn::PushWord(28),
                Insn::PushLit(0x0002),
                Insn::CombineAnd(Binop::Eq),
                Insn::PushLit(1),
                Insn::Ret,
            ])
        };
        r.kernel.borrow_mut().set_tx_limiter(Some(program));
        let cpu = r.kernel.borrow().cpu();
        // A legitimate frame (src 10.0.0.2) passes.
        let ok_frame = {
            let ip = Ipv4Header::new(B_IP, A_IP, IpProto::Udp, UDP_HDR_LEN);
            let eth = EthernetHeader {
                dst: EtherAddr::local(1),
                src: EtherAddr::local(2),
                ethertype: EtherType::Ipv4,
            };
            let mut f = eth.encode().to_vec();
            f.extend_from_slice(&ip.encode());
            f.extend_from_slice(&UdpHeader::new(1, 2, 0).encode());
            f
        };
        let mut charge = cpu.borrow_mut().begin(r.sim.now());
        Kernel::send_from_user(&r.kernel, &mut r.sim, &mut charge, ok_frame);
        cpu.borrow_mut().finish(charge);
        r.sim.run_to_idle();
        assert_eq!(r.ether.borrow().stats().tx_frames, 1);
        // A spoofed frame (src 10.0.0.9) is dropped before the device.
        let spoof = {
            let ip = Ipv4Header::new(Ipv4Addr::new(10, 0, 0, 9), A_IP, IpProto::Udp, UDP_HDR_LEN);
            let eth = EthernetHeader {
                dst: EtherAddr::local(1),
                src: EtherAddr::local(2),
                ethertype: EtherType::Ipv4,
            };
            let mut f = eth.encode().to_vec();
            f.extend_from_slice(&ip.encode());
            f.extend_from_slice(&UdpHeader::new(1, 2, 0).encode());
            f
        };
        let mut charge = cpu.borrow_mut().begin(r.sim.now());
        Kernel::send_from_user(&r.kernel, &mut r.sim, &mut charge, spoof);
        cpu.borrow_mut().finish(charge);
        r.sim.run_to_idle();
        assert_eq!(
            r.ether.borrow().stats().tx_frames,
            1,
            "spoof must not reach the wire"
        );
        assert_eq!(r.kernel.borrow().stats().tx_rejected, 1);
    }

    #[test]
    fn rpc_charges_four_copies() {
        use psd_sim::LatencyProbe;
        let probe = LatencyProbe::shared();
        let mut cpu = Cpu::new();
        cpu.set_probe(Some(probe.clone()));
        let costs = CostModel::decstation_5000_200();
        let mut charge = cpu.begin(SimTime::ZERO);
        rpc_data_charge(&costs, &mut charge, Layer::EntryCopyin, 1000);
        cpu.finish(charge);
        let expect = costs.trap + costs.rpc_base + 3 * costs.ipc_copy_byte * 1000;
        assert_eq!(
            probe.borrow().layer(Layer::EntryCopyin).total,
            SimTime::from_nanos(expect)
        );
        assert_eq!(probe.borrow().layer(Layer::EntryCopyin).crossings, 1);
    }

    // --- Batched NEWAPI (ISSUE 9) ---

    /// A checksummed TCP data frame addressed to this rig's kernel.
    fn tcp_frame(
        dst_mac: EtherAddr,
        dst: (Ipv4Addr, u16),
        src_port: u16,
        seq: u32,
        flags: TcpFlags,
        payload: &[u8],
    ) -> Vec<u8> {
        let tcp = TcpHeader {
            src_port,
            dst_port: dst.1,
            seq,
            ack: 1,
            flags,
            window: 8192,
            urgent: 0,
            mss: None,
        };
        let ip = Ipv4Header::new(A_IP, dst.0, IpProto::Tcp, tcp.header_len() + payload.len());
        let tcp_bytes = tcp.encode_with_checksum(&ip, payload.len(), std::iter::once(payload));
        let eth = EthernetHeader {
            dst: dst_mac,
            src: EtherAddr::local(1),
            ethertype: EtherType::Ipv4,
        };
        let mut f = eth.encode().to_vec();
        f.extend_from_slice(&ip.encode());
        f.extend_from_slice(&tcp_bytes);
        f.extend_from_slice(payload);
        f
    }

    #[test]
    fn batch_window_amortizes_ipc_crossings() {
        use psd_sim::LatencyProbe;
        let mut r = rig();
        let probe = LatencyProbe::shared();
        r.kernel
            .borrow()
            .cpu()
            .borrow_mut()
            .set_probe(Some(probe.clone()));
        let (sink, log) = collect_sink();
        {
            let mut k = r.kernel.borrow_mut();
            k.set_batch_config(BatchConfig {
                batch: 4,
                gro: false,
                gso: false,
            });
            let ep = k.create_endpoint(RxMode::Ipc, sink);
            k.install_filter(EndpointSpec::unconnected(IpProto::Udp, B_IP, 7), ep)
                .unwrap();
        }
        for _ in 0..8 {
            let f = udp_frame(EtherAddr::local(2), (B_IP, 7), 64);
            Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        }
        r.sim.run_to_idle();
        // Every frame is delivered, but only the first of each window of
        // four pays the IPC crossing and wakeup.
        assert_eq!(log.borrow().len(), 8);
        assert_eq!(probe.borrow().layer(Layer::KernelCopyout).crossings, 2);
        let stats = r.kernel.borrow().stats();
        assert_eq!(stats.rx_delivery_crossings, 2);
        assert_eq!(stats.rx_session_crossings, 2);
    }

    #[test]
    fn unbatched_config_pays_every_crossing() {
        use psd_sim::LatencyProbe;
        let mut r = rig();
        let probe = LatencyProbe::shared();
        r.kernel
            .borrow()
            .cpu()
            .borrow_mut()
            .set_probe(Some(probe.clone()));
        let (sink, log) = collect_sink();
        {
            let mut k = r.kernel.borrow_mut();
            let ep = k.create_endpoint(RxMode::Ipc, sink);
            k.install_filter(EndpointSpec::unconnected(IpProto::Udp, B_IP, 7), ep)
                .unwrap();
        }
        for _ in 0..5 {
            let f = udp_frame(EtherAddr::local(2), (B_IP, 7), 64);
            Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        }
        r.sim.run_to_idle();
        assert_eq!(log.borrow().len(), 5);
        assert_eq!(probe.borrow().layer(Layer::KernelCopyout).crossings, 5);
        assert_eq!(r.kernel.borrow().stats().rx_delivery_crossings, 5);
    }

    #[test]
    fn gro_coalesces_inorder_run_and_flushes_when_full() {
        let mut r = rig();
        let (sink, log) = collect_sink();
        {
            let mut k = r.kernel.borrow_mut();
            k.set_batch_config(BatchConfig::full(3));
            let ep = k.create_endpoint(RxMode::Shm, sink);
            k.install_filter(EndpointSpec::unconnected(IpProto::Tcp, B_IP, 7), ep)
                .unwrap();
        }
        let mut seq = 1000u32;
        let mut want = Vec::new();
        for b in [0x11u8, 0x22, 0x33] {
            let payload = vec![b; 100];
            let f = tcp_frame(
                EtherAddr::local(2),
                (B_IP, 7),
                5555,
                seq,
                TcpFlags::ACK,
                &payload,
            );
            Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
            want.extend_from_slice(&payload);
            seq += 100;
        }
        r.sim.run_to_idle();
        assert_eq!(log.borrow().len(), 1, "three segments, one descriptor");
        let frame = log.borrow()[0].1.clone();
        let ip = Ipv4Header::parse(&frame[ETHER_HDR_LEN..]).unwrap();
        assert_eq!(ip.payload_len(), 20 + 300);
        let (tcp, thl) = TcpHeader::parse(&frame[ETHER_HDR_LEN + IPV4_HDR_LEN..]).unwrap();
        assert_eq!(tcp.seq, 1000);
        assert_eq!(&frame[ETHER_HDR_LEN + IPV4_HDR_LEN + thl..], &want[..]);
        let stats = r.kernel.borrow().stats();
        assert_eq!(stats.gro_held, 1);
        assert_eq!(stats.gro_merged, 2);
        assert_eq!(stats.gro_flushes, 1);
    }

    #[test]
    fn gro_deadline_flushes_partial_run() {
        let mut r = rig();
        let (sink, log) = collect_sink();
        {
            let mut k = r.kernel.borrow_mut();
            k.set_batch_config(BatchConfig::full(16));
            let ep = k.create_endpoint(RxMode::Shm, sink);
            k.install_filter(EndpointSpec::unconnected(IpProto::Tcp, B_IP, 7), ep)
                .unwrap();
        }
        for i in 0..2u32 {
            let f = tcp_frame(
                EtherAddr::local(2),
                (B_IP, 7),
                5555,
                1000 + i * 50,
                TcpFlags::ACK,
                &vec![0xAB; 50],
            );
            Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        }
        r.sim.run_to_idle();
        // The run never filled; the deadline event flushed it whole.
        assert_eq!(log.borrow().len(), 1);
        let stats = r.kernel.borrow().stats();
        assert_eq!(stats.gro_merged, 1);
        assert_eq!(stats.gro_flushes, 1);
    }

    #[test]
    fn gro_never_merges_across_gap_or_push() {
        let mut r = rig();
        let (sink, log) = collect_sink();
        {
            let mut k = r.kernel.borrow_mut();
            k.set_batch_config(BatchConfig::full(16));
            let ep = k.create_endpoint(RxMode::Shm, sink);
            k.install_filter(EndpointSpec::unconnected(IpProto::Tcp, B_IP, 7), ep)
                .unwrap();
        }
        // seq 1000 (held), seq 2000 (gap: flushes the run, starts a new
        // one), then a PSH segment (boundary: flushes again, delivered
        // alone).
        for (seq, flags) in [
            (1000u32, TcpFlags::ACK),
            (2000, TcpFlags::ACK),
            (2100, TcpFlags::ACK | TcpFlags::PSH),
        ] {
            let f = tcp_frame(
                EtherAddr::local(2),
                (B_IP, 7),
                5555,
                seq,
                flags,
                &vec![0xCD; 100],
            );
            Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        }
        r.sim.run_to_idle();
        assert_eq!(log.borrow().len(), 3, "nothing merged");
        assert_eq!(r.kernel.borrow().stats().gro_merged, 0);
    }

    #[test]
    fn header_only_delivery_copies_headers_not_bodies() {
        use psd_sim::LatencyProbe;
        let mut r = rig();
        let probe = LatencyProbe::shared();
        r.kernel
            .borrow()
            .cpu()
            .borrow_mut()
            .set_probe(Some(probe.clone()));
        let (sink, log) = collect_sink();
        {
            let mut k = r.kernel.borrow_mut();
            k.set_placement_policy(Some(
                psd_filter::PlacementPolicy::new().resident_ports(7, 7),
            ));
            let ep = k.create_endpoint(RxMode::Shm, sink);
            k.install_filter(EndpointSpec::unconnected(IpProto::Udp, B_IP, 7), ep)
                .unwrap();
        }
        let f = udp_frame(EtherAddr::local(2), (B_IP, 7), 1400);
        Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        r.sim.run_to_idle();
        assert_eq!(log.borrow().len(), 1);
        let stats = r.kernel.borrow().stats();
        assert_eq!(stats.header_only_deliveries, 1);
        let costs = CostModel::decstation_5000_200();
        // Only eth+ip+udp headers (42 bytes) crossed into the ring; a
        // full-body copy would be ~1400 bytes of kcopy.
        let copyout = probe.borrow().layer(Layer::KernelCopyout).total;
        assert!(
            copyout
                < SimTime::from_nanos(
                    costs.mbuf_alloc + costs.sched_wakeup + costs.kcopy_cached_byte * 100
                ),
            "header-only copyout should be flat, was {copyout}"
        );
    }

    #[test]
    fn endpoint_death_while_gro_held_represents_frame() {
        let mut r = rig();
        let (sink_a, log_a) = collect_sink();
        let (sink_b, log_b) = collect_sink();
        let ep_a = {
            let mut k = r.kernel.borrow_mut();
            k.set_batch_config(BatchConfig::full(16));
            let ep = k.create_endpoint(RxMode::Shm, sink_a);
            k.install_filter(EndpointSpec::unconnected(IpProto::Tcp, B_IP, 7), ep)
                .unwrap();
            ep
        };
        let f = tcp_frame(
            EtherAddr::local(2),
            (B_IP, 7),
            5555,
            1000,
            TcpFlags::ACK,
            &vec![0xEF; 80],
        );
        Ethernet::transmit(&r.ether, &mut r.sim, SimTime::ZERO, f);
        // Mid-hold (well before the 2 ms flush deadline): the session
        // migrates — its endpoint dies and a new owner installs the
        // same filter.
        let kernel = r.kernel.clone();
        r.sim.at(SimTime::from_micros(1000), move |_| {
            let mut k = kernel.borrow_mut();
            k.destroy_endpoint(ep_a);
            let ep_b = k.create_endpoint(RxMode::Shm, sink_b);
            k.install_filter(EndpointSpec::unconnected(IpProto::Tcp, B_IP, 7), ep_b)
                .unwrap();
        });
        r.sim.run_to_idle();
        // Exactly once: the held frame was re-presented and delivered to
        // the new owner, never duplicated, never dropped.
        assert_eq!(log_a.borrow().len(), 0);
        assert_eq!(log_b.borrow().len(), 1);
        let stats = r.kernel.borrow().stats();
        assert_eq!(stats.gro_requeued, 1);
        assert_eq!(stats.drops.total(), 0);
    }
}
