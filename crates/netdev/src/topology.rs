//! Multi-hop topologies: learning switches and store-and-forward IP
//! routers composed from [`Ethernet`] segments.
//!
//! The paper's world is a single perfect wire between two hosts. This
//! module grows it into an internet: segments with per-link bandwidth
//! and propagation delay joined by [`Switch`]es (transparent L2
//! bridging, MAC learning, flooding) and [`Router`]s (ARP, longest-
//! prefix forwarding, TTL decrement with ICMP Time Exceeded, bounded
//! drop-tail or RED egress queues). Everything stays deterministic:
//! the only randomness is RED's drop draw, forked from the simulation
//! seed at construction, and every fault — link flaps, partitions,
//! forced queue-full bursts, asymmetric routes — comes from the same
//! [`psd_sim::fault`] plane the rest of the system uses:
//!
//! | site | consulted | effect |
//! |---|---|---|
//! | `LinkDown` | per frame, by the segment | frame dies on a downed link |
//! | `LinkQueueFull` | per egress enqueue | queue reports full → tail drop |
//! | `RouteFlip` | per forwarded packet with an alternate route | packet takes the alternate next hop |
//!
//! Devices are infrastructure, not hosts: they charge no CPU time (the
//! latency they add is queueing plus the egress link's serialization
//! and propagation), and topologies are trees — there is no spanning
//! tree protocol, so do not build L2 loops.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use psd_sim::{
    DropCounters, DropReason, FaultPlaneHandle, FaultSite, Rng, Sim, SimTime, Terminal, TraceHandle,
};
use psd_wire::{
    ArpOp, ArpPacket, EtherAddr, EtherType, EthernetHeader, IcmpMessage, IcmpType, IpProto,
    Ipv4Header, ETHER_HDR_LEN, IPV4_HDR_LEN,
};

use crate::{Ethernet, EthernetHandle, Station};

/// How many packets may wait for one unresolved next hop before the
/// oldest is dropped (`ArpUnresolved`).
const ARP_PENDING_CAP: usize = 8;
/// Minimum spacing between ARP requests for the same next hop.
const ARP_REQUEST_GAP: SimTime = SimTime::from_millis(500);

/// Queue discipline for one egress port.
#[derive(Clone, Copy, Debug)]
pub enum QueueDisc {
    /// Bounded FIFO: a frame arriving at a full queue tail-drops.
    DropTail {
        /// Maximum frames in flight on the port.
        capacity: usize,
    },
    /// Random Early Detection: below `min_th` nothing drops; between
    /// `min_th` and `max_th` the drop probability climbs linearly to
    /// `max_p`; at `max_th` and beyond everything early-drops (and the
    /// hard `capacity` still tail-drops).
    Red {
        /// Hard queue bound (tail drop).
        capacity: usize,
        /// Depth at which early drops begin.
        min_th: usize,
        /// Depth at which the early-drop probability reaches 1.
        max_th: usize,
        /// Early-drop probability just below `max_th`.
        max_p: f64,
    },
}

impl QueueDisc {
    fn capacity(self) -> usize {
        match self {
            QueueDisc::DropTail { capacity } | QueueDisc::Red { capacity, .. } => capacity,
        }
    }
}

/// Why the egress queue refused a frame.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum QueueVerdict {
    Enqueue,
    TailDrop,
    RedDrop,
}

/// One egress port: a segment, this device's address on it, and the
/// bounded queue in front of the link.
struct PortState {
    seg: EthernetHandle,
    mac: EtherAddr,
    /// The router's interface address (unspecified on switch ports).
    ip: Ipv4Addr,
    disc: QueueDisc,
    /// Frames handed to the link but not yet fully serialized.
    depth: Rc<Cell<usize>>,
}

impl PortState {
    /// Decides admission at the current depth. RED draws come from the
    /// device's private RNG; a fault-plane `LinkQueueFull` injection is
    /// passed in as `forced_full`.
    fn admit(&self, rng: &mut Rng, forced_full: bool) -> QueueVerdict {
        let depth = self.depth.get();
        if forced_full || depth >= self.disc.capacity() {
            return QueueVerdict::TailDrop;
        }
        if let QueueDisc::Red {
            min_th,
            max_th,
            max_p,
            ..
        } = self.disc
        {
            if depth >= max_th {
                return QueueVerdict::RedDrop;
            }
            if depth >= min_th {
                let p = max_p * (depth - min_th) as f64 / (max_th - min_th) as f64;
                if rng.chance(p) {
                    return QueueVerdict::RedDrop;
                }
            }
        }
        QueueVerdict::Enqueue
    }

    /// Transmits an admitted frame and schedules the depth decrement
    /// for the end of serialization (propagation does not occupy the
    /// queue).
    fn send(&self, sim: &mut Sim, frame: Vec<u8>) {
        self.depth.set(self.depth.get() + 1);
        let propagation = self.seg.borrow().propagation();
        // Forwarded frames keep the original source MAC; exclude this
        // port so the device never hears its own transmission.
        let arrival = Ethernet::transmit_from(&self.seg, sim, sim.now(), frame, self.mac);
        let serialized = SimTime::from_nanos(arrival.as_nanos() - propagation.as_nanos());
        let depth = self.depth.clone();
        sim.at(serialized, move |_| {
            depth.set(depth.get().saturating_sub(1));
        });
    }
}

/// A device reachable through per-port [`Station`] proxies.
trait NetNode: 'static {
    fn frame_from_wire(dev: &Rc<RefCell<Self>>, sim: &mut Sim, port: usize, frame: Vec<u8>);
}

/// The per-segment station proxy: one per port, delegating to the
/// owning device with the port index attached.
struct PortStation<D: NetNode> {
    dev: Rc<RefCell<D>>,
    mac: EtherAddr,
    port: usize,
    promisc: bool,
}

impl<D: NetNode> Station for PortStation<D> {
    fn mac(&self) -> EtherAddr {
        self.mac
    }

    fn promiscuous(&self) -> bool {
        self.promisc
    }

    fn frame_arrived(&mut self, sim: &mut Sim, frame: Vec<u8>) {
        let dev = self.dev.clone();
        D::frame_from_wire(&dev, sim, self.port, frame);
    }
}

/// Terminates the tracer's current packet (the device's delivered copy
/// of the wire frame), if a tracer is attached.
fn terminate_current(tracer: &Option<TraceHandle>, now: SimTime, term: Terminal) {
    if let Some(t) = tracer {
        let mut tr = t.borrow_mut();
        if let Some(id) = tr.current() {
            tr.terminal(id, now, term);
        }
    }
}

/// Stamps an event on the tracer's current packet.
fn event_current(tracer: &Option<TraceHandle>, now: SimTime, name: &'static str) {
    if let Some(t) = tracer {
        let mut tr = t.borrow_mut();
        if let Some(id) = tr.current() {
            tr.event(id, now, name);
        }
    }
}

// --- Switch ---

/// Counters for one [`Switch`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SwitchStats {
    /// Frames received across all ports.
    pub rx_frames: u64,
    /// Frames forwarded to a learned port.
    pub forwarded: u64,
    /// Frames flooded to every other port (broadcast or unknown MAC).
    pub flooded: u64,
    /// Frames filtered because the destination is on the ingress port.
    pub filtered: u64,
    /// Frames tail-dropped at an egress queue.
    pub tail_drops: u64,
    /// Frames RED-dropped at an egress queue.
    pub red_drops: u64,
}

/// A transparent learning switch joining Ethernet segments.
pub struct Switch {
    ports: Vec<PortState>,
    /// Learned station location: MAC → port index.
    table: BTreeMap<[u8; 6], usize>,
    rng: Rng,
    fault: Option<FaultPlaneHandle>,
    tracer: Option<TraceHandle>,
    stats: SwitchStats,
    drops: DropCounters,
}

/// Shared handle to a [`Switch`].
pub type SwitchHandle = Rc<RefCell<Switch>>;

impl Switch {
    /// Creates a switch with no ports. The RED draw stream is forked
    /// from the simulation seed here, so construction order fixes
    /// determinism.
    pub fn new(sim: &mut Sim) -> SwitchHandle {
        Rc::new(RefCell::new(Switch {
            ports: Vec::new(),
            table: BTreeMap::new(),
            rng: sim.rng().fork(),
            fault: None,
            tracer: None,
            stats: SwitchStats::default(),
            drops: DropCounters::default(),
        }))
    }

    /// Attaches a port on `seg`. `station` derives the port MAC (must
    /// be unique across the whole topology). Returns the port index.
    pub fn add_port(this: &SwitchHandle, seg: &EthernetHandle, station: u32, disc: QueueDisc) {
        let mac = EtherAddr::local(station);
        let port = {
            let mut sw = this.borrow_mut();
            sw.ports.push(PortState {
                seg: seg.clone(),
                mac,
                ip: Ipv4Addr::UNSPECIFIED,
                disc,
                depth: Rc::new(Cell::new(0)),
            });
            sw.ports.len() - 1
        };
        // A switch port hears everything on its segment.
        seg.borrow_mut().attach(Rc::new(RefCell::new(PortStation {
            dev: this.clone(),
            mac,
            port,
            promisc: true,
        })));
    }

    /// Attaches (or detaches) the fault plane ([`FaultSite::LinkQueueFull`]
    /// is consulted per egress enqueue).
    pub fn set_fault_plane(&mut self, fault: Option<FaultPlaneHandle>) {
        self.fault = fault;
    }

    /// Attaches (or detaches) a packet-lifecycle tracer.
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>) {
        self.tracer = tracer;
    }

    /// Current counters.
    pub fn stats(&self) -> SwitchStats {
        self.stats
    }

    /// Always-on per-reason drop counters.
    pub fn drops(&self) -> DropCounters {
        self.drops
    }

    /// Current egress queue depth of `port` (frames admitted and not
    /// yet drained onto the wire).
    pub fn port_depth(&self, port: usize) -> usize {
        self.ports[port].depth.get()
    }

    /// Shared depth counter behind [`Switch::port_depth`], for gauges
    /// that must read it without borrowing the switch.
    pub fn port_depth_cell(&self, port: usize) -> Rc<Cell<usize>> {
        self.ports[port].depth.clone()
    }

    /// Sends one admitted-or-dropped frame out `port`, returning the
    /// drop reason if the queue refused it.
    fn egress(&mut self, sim: &mut Sim, port: usize, frame: Vec<u8>) -> Option<DropReason> {
        let forced = match &self.fault {
            Some(f) => f.borrow_mut().should_inject(FaultSite::LinkQueueFull),
            None => false,
        };
        match self.ports[port].admit(&mut self.rng, forced) {
            QueueVerdict::Enqueue => {
                self.ports[port].send(sim, frame);
                None
            }
            QueueVerdict::TailDrop => {
                self.stats.tail_drops += 1;
                self.drops.note(DropReason::QueueTailDrop);
                Some(DropReason::QueueTailDrop)
            }
            QueueVerdict::RedDrop => {
                self.stats.red_drops += 1;
                self.drops.note(DropReason::RedEarlyDrop);
                Some(DropReason::RedEarlyDrop)
            }
        }
    }
}

impl NetNode for Switch {
    fn frame_from_wire(dev: &Rc<RefCell<Switch>>, sim: &mut Sim, port: usize, frame: Vec<u8>) {
        let mut sw = dev.borrow_mut();
        sw.stats.rx_frames += 1;
        let now = sim.now();
        let tracer = sw.tracer.clone();
        let hdr = match EthernetHeader::parse(&frame) {
            Ok(h) => h,
            Err(_) => {
                sw.drops.note(DropReason::MalformedFrame);
                terminate_current(&tracer, now, Terminal::Dropped(DropReason::MalformedFrame));
                return;
            }
        };
        sw.table.insert(hdr.src.0, port);
        let known = sw.table.get(&hdr.dst.0).copied();
        match known {
            Some(out) if !hdr.dst.is_broadcast() => {
                if out == port {
                    // Destination is on the ingress segment: the medium
                    // already delivered it; the switch filters its copy.
                    sw.stats.filtered += 1;
                    terminate_current(&tracer, now, Terminal::Absorbed);
                    return;
                }
                match sw.egress(sim, out, frame) {
                    None => {
                        sw.stats.forwarded += 1;
                        event_current(&tracer, now, "switch-forward");
                        terminate_current(&tracer, now, Terminal::Absorbed);
                    }
                    Some(reason) => {
                        terminate_current(&tracer, now, Terminal::Dropped(reason));
                    }
                }
            }
            _ => {
                // Broadcast or unknown unicast: flood every other port.
                sw.stats.flooded += 1;
                event_current(&tracer, now, "switch-flood");
                for out in 0..sw.ports.len() {
                    if out != port {
                        let _ = sw.egress(sim, out, frame.clone());
                    }
                }
                // The incoming copy is consumed by the flood; per-port
                // queue refusals are counted in `drops`.
                terminate_current(&tracer, now, Terminal::Absorbed);
            }
        }
    }
}

// --- Router ---

/// One forwarding-table entry.
#[derive(Clone, Copy, Debug)]
pub struct RouterRoute {
    /// Destination network.
    pub net: Ipv4Addr,
    /// Network mask (contiguous).
    pub mask: Ipv4Addr,
    /// Egress port index.
    pub port: usize,
    /// Next-hop router address, or `None` when `net` is directly
    /// attached (deliver straight to the destination).
    pub next_hop: Option<Ipv4Addr>,
    /// Optional alternate `(port, next_hop)` taken when the fault
    /// plane injects [`FaultSite::RouteFlip`] — asymmetric routing.
    pub alt: Option<(usize, Ipv4Addr)>,
}

impl RouterRoute {
    fn matches(&self, ip: Ipv4Addr) -> bool {
        let m = u32::from(self.mask);
        u32::from(ip) & m == u32::from(self.net) & m
    }
}

/// Counters for one [`Router`].
#[derive(Clone, Copy, Debug, Default)]
pub struct RouterStats {
    /// Frames received across all ports.
    pub rx_frames: u64,
    /// IP packets forwarded onto an egress link.
    pub forwarded: u64,
    /// Packets addressed to one of the router's own interfaces.
    pub absorbed: u64,
    /// Packets whose TTL expired here.
    pub ttl_expired: u64,
    /// ICMP Time Exceeded messages originated.
    pub time_exceeded_sent: u64,
    /// Packets with no matching route.
    pub no_route: u64,
    /// Packets that took an alternate route on a `RouteFlip` injection.
    pub route_flips: u64,
    /// Frames tail-dropped at an egress queue.
    pub tail_drops: u64,
    /// Frames RED-dropped at an egress queue.
    pub red_drops: u64,
    /// ARP requests sent.
    pub arp_requests: u64,
    /// ARP replies sent.
    pub arp_replies: u64,
    /// Packets parked awaiting ARP resolution.
    pub arp_parked: u64,
}

/// A store-and-forward IP router.
pub struct Router {
    ports: Vec<PortState>,
    routes: Vec<RouterRoute>,
    /// Resolved next-hop MACs (interface addresses are unique across
    /// the topology, so one cache serves every port).
    arp: BTreeMap<Ipv4Addr, EtherAddr>,
    /// Packets waiting on ARP: next hop → (egress port, IP packet).
    pending: BTreeMap<Ipv4Addr, Vec<(usize, Vec<u8>)>>,
    /// Last ARP request time per next hop (rate limiting).
    last_arp_req: BTreeMap<Ipv4Addr, SimTime>,
    rng: Rng,
    fault: Option<FaultPlaneHandle>,
    tracer: Option<TraceHandle>,
    stats: RouterStats,
    drops: DropCounters,
}

/// Shared handle to a [`Router`].
pub type RouterHandle = Rc<RefCell<Router>>;

impl Router {
    /// Creates a router with no ports. The RED draw stream is forked
    /// from the simulation seed here.
    pub fn new(sim: &mut Sim) -> RouterHandle {
        Rc::new(RefCell::new(Router {
            ports: Vec::new(),
            routes: Vec::new(),
            arp: BTreeMap::new(),
            pending: BTreeMap::new(),
            last_arp_req: BTreeMap::new(),
            rng: sim.rng().fork(),
            fault: None,
            tracer: None,
            stats: RouterStats::default(),
            drops: DropCounters::default(),
        }))
    }

    /// Attaches an interface on `seg` with address `ip`. `station`
    /// derives the port MAC (unique across the topology). Returns the
    /// port index for use in [`RouterRoute`]s.
    pub fn add_port(
        this: &RouterHandle,
        seg: &EthernetHandle,
        station: u32,
        ip: Ipv4Addr,
        disc: QueueDisc,
    ) -> usize {
        let mac = EtherAddr::local(station);
        let port = {
            let mut r = this.borrow_mut();
            r.ports.push(PortState {
                seg: seg.clone(),
                mac,
                ip,
                disc,
                depth: Rc::new(Cell::new(0)),
            });
            r.ports.len() - 1
        };
        seg.borrow_mut().attach(Rc::new(RefCell::new(PortStation {
            dev: this.clone(),
            mac,
            port,
            promisc: false,
        })));
        port
    }

    /// Installs a route. Longest prefix wins; insertion order breaks
    /// ties.
    pub fn add_route(&mut self, route: RouterRoute) {
        self.routes.push(route);
    }

    /// Attaches (or detaches) the fault plane
    /// ([`FaultSite::LinkQueueFull`] per egress enqueue,
    /// [`FaultSite::RouteFlip`] per packet with an alternate route).
    pub fn set_fault_plane(&mut self, fault: Option<FaultPlaneHandle>) {
        self.fault = fault;
    }

    /// Attaches (or detaches) a packet-lifecycle tracer.
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>) {
        self.tracer = tracer;
    }

    /// Current counters.
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Always-on per-reason drop counters.
    pub fn drops(&self) -> DropCounters {
        self.drops
    }

    /// Current egress queue depth of `port` (frames admitted and not
    /// yet drained onto the wire).
    pub fn port_depth(&self, port: usize) -> usize {
        self.ports[port].depth.get()
    }

    /// Shared depth counter behind [`Router::port_depth`], for gauges
    /// that must read it without borrowing the router.
    pub fn port_depth_cell(&self, port: usize) -> Rc<Cell<usize>> {
        self.ports[port].depth.clone()
    }

    fn lookup(&self, dst: Ipv4Addr) -> Option<RouterRoute> {
        self.routes
            .iter()
            .filter(|r| r.matches(dst))
            .max_by_key(|r| u32::from(r.mask))
            .copied()
    }

    fn egress(&mut self, sim: &mut Sim, port: usize, frame: Vec<u8>) -> Option<DropReason> {
        let forced = match &self.fault {
            Some(f) => f.borrow_mut().should_inject(FaultSite::LinkQueueFull),
            None => false,
        };
        match self.ports[port].admit(&mut self.rng, forced) {
            QueueVerdict::Enqueue => {
                self.ports[port].send(sim, frame);
                None
            }
            QueueVerdict::TailDrop => {
                self.stats.tail_drops += 1;
                self.drops.note(DropReason::QueueTailDrop);
                Some(DropReason::QueueTailDrop)
            }
            QueueVerdict::RedDrop => {
                self.stats.red_drops += 1;
                self.drops.note(DropReason::RedEarlyDrop);
                Some(DropReason::RedEarlyDrop)
            }
        }
    }

    /// Sends an IP packet out `port` to `next_hop`, resolving the MAC
    /// first. Returns the drop reason if the queue refused it; a
    /// packet parked for ARP counts as sent (it keeps a pending slot).
    fn send_ip(
        &mut self,
        sim: &mut Sim,
        port: usize,
        next_hop: Ipv4Addr,
        ip_bytes: Vec<u8>,
    ) -> Option<DropReason> {
        if let Some(&mac) = self.arp.get(&next_hop) {
            let hdr = EthernetHeader {
                dst: mac,
                src: self.ports[port].mac,
                ethertype: EtherType::Ipv4,
            };
            let mut frame = hdr.encode().to_vec();
            frame.extend_from_slice(&ip_bytes);
            return self.egress(sim, port, frame);
        }
        // Park the packet and (rate-limited) ask who-has.
        self.stats.arp_parked += 1;
        let q = self.pending.entry(next_hop).or_default();
        q.push((port, ip_bytes));
        if q.len() > ARP_PENDING_CAP {
            q.remove(0);
            self.drops.note(DropReason::ArpUnresolved);
        }
        let due = match self.last_arp_req.get(&next_hop) {
            None => true,
            Some(&at) => sim.now() >= at + ARP_REQUEST_GAP,
        };
        if due {
            self.last_arp_req.insert(next_hop, sim.now());
            self.stats.arp_requests += 1;
            let req = ArpPacket::request(self.ports[port].mac, self.ports[port].ip, next_hop);
            let hdr = EthernetHeader {
                dst: EtherAddr::BROADCAST,
                src: self.ports[port].mac,
                ethertype: EtherType::Arp,
            };
            let mut frame = hdr.encode().to_vec();
            frame.extend_from_slice(&req.encode());
            let _ = self.egress(sim, port, frame);
        }
        None
    }

    /// Routes and sends a packet this router originates (ICMP errors).
    fn originate(&mut self, sim: &mut Sim, ip_bytes: Vec<u8>) {
        let Ok(ip) = Ipv4Header::parse(&ip_bytes) else {
            return;
        };
        let Some(route) = self.lookup(ip.dst) else {
            self.stats.no_route += 1;
            return;
        };
        let next_hop = route.next_hop.unwrap_or(ip.dst);
        let _ = self.send_ip(sim, route.port, next_hop, ip_bytes);
    }

    fn ip_input(dev: &Rc<RefCell<Router>>, sim: &mut Sim, port: usize, frame: &[u8]) {
        let mut r = dev.borrow_mut();
        let now = sim.now();
        let tracer = r.tracer.clone();
        let ip_bytes = &frame[ETHER_HDR_LEN..];
        let ip = match Ipv4Header::parse(ip_bytes) {
            Ok(h) if h.header_len == IPV4_HDR_LEN => h,
            _ => {
                r.drops.note(DropReason::MalformedFrame);
                terminate_current(&tracer, now, Terminal::Dropped(DropReason::MalformedFrame));
                return;
            }
        };
        if r.ports.iter().any(|p| p.ip == ip.dst) {
            r.stats.absorbed += 1;
            terminate_current(&tracer, now, Terminal::Absorbed);
            return;
        }
        if ip.ttl <= 1 {
            r.stats.ttl_expired += 1;
            r.drops.note(DropReason::TtlExpired);
            event_current(&tracer, now, "ttl-expired");
            terminate_current(&tracer, now, Terminal::Dropped(DropReason::TtlExpired));
            // Quote the expired header + 8 payload bytes back at the
            // source, from the ingress interface address.
            if ip.proto != IpProto::Icmp {
                let icmp = IcmpMessage {
                    kind: IcmpType::TimeExceeded(0),
                    ident: 0,
                    seq: 0,
                    payload: ip_bytes[..ip_bytes.len().min(IPV4_HDR_LEN + 8)].to_vec(),
                };
                let body = icmp.encode();
                let hdr = Ipv4Header::new(r.ports[port].ip, ip.src, IpProto::Icmp, body.len());
                let mut pkt = hdr.encode().to_vec();
                pkt.extend_from_slice(&body);
                r.stats.time_exceeded_sent += 1;
                r.originate(sim, pkt);
            }
            return;
        }
        let Some(route) = r.lookup(ip.dst) else {
            r.stats.no_route += 1;
            r.drops.note(DropReason::NotForHost);
            terminate_current(&tracer, now, Terminal::Dropped(DropReason::NotForHost));
            return;
        };
        // Asymmetric routing: an armed RouteFlip sends this packet via
        // the alternate next hop. Only routes that have one consult the
        // site, so topologies without alternates never visit it.
        let (out_port, next_hop) = match route.alt {
            Some((alt_port, alt_hop)) => {
                let flip = match &r.fault {
                    Some(f) => f.borrow_mut().should_inject(FaultSite::RouteFlip),
                    None => false,
                };
                if flip {
                    r.stats.route_flips += 1;
                    event_current(&tracer, now, "fault:route-flip");
                    (alt_port, alt_hop)
                } else {
                    (route.port, route.next_hop.unwrap_or(ip.dst))
                }
            }
            None => (route.port, route.next_hop.unwrap_or(ip.dst)),
        };
        // Store-and-forward: decrement TTL, recompute the checksum,
        // splice the new header back in.
        let mut fwd = Ipv4Header { ..ip };
        fwd.ttl = ip.ttl - 1;
        let mut out = ip_bytes.to_vec();
        out[..IPV4_HDR_LEN].copy_from_slice(&fwd.encode());
        match r.send_ip(sim, out_port, next_hop, out) {
            None => {
                r.stats.forwarded += 1;
                event_current(&tracer, now, "router-forward");
                terminate_current(&tracer, now, Terminal::Absorbed);
            }
            Some(reason) => {
                terminate_current(&tracer, now, Terminal::Dropped(reason));
            }
        }
    }

    fn arp_input(dev: &Rc<RefCell<Router>>, sim: &mut Sim, port: usize, frame: &[u8]) {
        let mut r = dev.borrow_mut();
        let now = sim.now();
        let tracer = r.tracer.clone();
        let Ok(arp) = ArpPacket::parse(&frame[ETHER_HDR_LEN..]) else {
            r.drops.note(DropReason::MalformedFrame);
            terminate_current(&tracer, now, Terminal::Dropped(DropReason::MalformedFrame));
            return;
        };
        // Learn the sender either way, and flush anything parked on it.
        r.arp.insert(arp.sender_ip, arp.sender_mac);
        if let Some(waiting) = r.pending.remove(&arp.sender_ip) {
            for (out_port, ip_bytes) in waiting {
                let _ = r.send_ip(sim, out_port, arp.sender_ip, ip_bytes);
            }
        }
        if arp.op == ArpOp::Request && arp.target_ip == r.ports[port].ip {
            r.stats.arp_replies += 1;
            let reply = arp.reply_to(r.ports[port].mac);
            let hdr = EthernetHeader {
                dst: arp.sender_mac,
                src: r.ports[port].mac,
                ethertype: EtherType::Arp,
            };
            let mut out = hdr.encode().to_vec();
            out.extend_from_slice(&reply.encode());
            let _ = r.egress(sim, port, out);
        }
        terminate_current(&tracer, now, Terminal::Absorbed);
    }
}

impl NetNode for Router {
    fn frame_from_wire(dev: &Rc<RefCell<Router>>, sim: &mut Sim, port: usize, frame: Vec<u8>) {
        {
            let mut r = dev.borrow_mut();
            r.stats.rx_frames += 1;
        }
        let hdr = match EthernetHeader::parse(&frame) {
            Ok(h) => h,
            Err(_) => {
                let mut r = dev.borrow_mut();
                let tracer = r.tracer.clone();
                r.drops.note(DropReason::MalformedFrame);
                terminate_current(
                    &tracer,
                    sim.now(),
                    Terminal::Dropped(DropReason::MalformedFrame),
                );
                return;
            }
        };
        match hdr.ethertype {
            EtherType::Ipv4 => Router::ip_input(dev, sim, port, &frame),
            EtherType::Arp => Router::arp_input(dev, sim, port, &frame),
            EtherType::Other(_) => {
                let mut r = dev.borrow_mut();
                let tracer = r.tracer.clone();
                r.drops.note(DropReason::UnsupportedEtherType);
                terminate_current(
                    &tracer,
                    sim.now(),
                    Terminal::Dropped(DropReason::UnsupportedEtherType),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EtherTiming;
    use psd_sim::FaultPlane;

    /// A minimal end host: answers ARP for its address and records
    /// every IPv4 packet it receives.
    struct HostStation {
        seg: EthernetHandle,
        mac: EtherAddr,
        ip: Ipv4Addr,
        received: Vec<(SimTime, Ipv4Header, Vec<u8>)>,
    }

    impl HostStation {
        fn new(seg: &EthernetHandle, station: u32, ip: Ipv4Addr) -> Rc<RefCell<HostStation>> {
            let host = Rc::new(RefCell::new(HostStation {
                seg: seg.clone(),
                mac: EtherAddr::local(station),
                ip,
                received: Vec::new(),
            }));
            seg.borrow_mut().attach(host.clone());
            host
        }

        /// Sends an IPv4 packet to `first_hop_mac`.
        fn send_ip(
            &self,
            sim: &mut Sim,
            first_hop_mac: EtherAddr,
            dst: Ipv4Addr,
            ttl: u8,
            payload: &[u8],
        ) {
            let mut ip = Ipv4Header::new(self.ip, dst, IpProto::Udp, payload.len());
            ip.ttl = ttl;
            let eh = EthernetHeader {
                dst: first_hop_mac,
                src: self.mac,
                ethertype: EtherType::Ipv4,
            };
            let mut frame = eh.encode().to_vec();
            frame.extend_from_slice(&ip.encode());
            frame.extend_from_slice(payload);
            Ethernet::transmit(&self.seg, sim, sim.now(), frame);
        }
    }

    impl Station for HostStation {
        fn mac(&self) -> EtherAddr {
            self.mac
        }

        fn frame_arrived(&mut self, sim: &mut Sim, frame: Vec<u8>) {
            let Ok(hdr) = EthernetHeader::parse(&frame) else {
                return;
            };
            match hdr.ethertype {
                EtherType::Arp => {
                    let Ok(arp) = ArpPacket::parse(&frame[ETHER_HDR_LEN..]) else {
                        return;
                    };
                    if arp.op == ArpOp::Request && arp.target_ip == self.ip {
                        let reply = arp.reply_to(self.mac);
                        let eh = EthernetHeader {
                            dst: arp.sender_mac,
                            src: self.mac,
                            ethertype: EtherType::Arp,
                        };
                        let mut f = eh.encode().to_vec();
                        f.extend_from_slice(&reply.encode());
                        let seg = self.seg.clone();
                        Ethernet::transmit(&seg, sim, sim.now(), f);
                    }
                }
                EtherType::Ipv4 => {
                    if let Ok(ip) = Ipv4Header::parse(&frame[ETHER_HDR_LEN..]) {
                        let payload = frame[ETHER_HDR_LEN + IPV4_HDR_LEN..].to_vec();
                        self.received.push((sim.now(), ip, payload));
                    }
                }
                EtherType::Other(_) => {}
            }
        }
    }

    fn ipa(a: u8, b: u8, c: u8, d: u8) -> Ipv4Addr {
        Ipv4Addr::new(a, b, c, d)
    }

    /// Two segments, a router port on each, directly attached routes.
    fn two_seg_router() -> (
        Sim,
        EthernetHandle,
        EthernetHandle,
        RouterHandle,
        Rc<RefCell<HostStation>>,
        Rc<RefCell<HostStation>>,
    ) {
        let mut sim = Sim::new(7);
        let sa = Ethernet::new(EtherTiming::ten_megabit());
        let sb = Ethernet::new(EtherTiming::ten_megabit());
        let r = Router::new(&mut sim);
        let pa = Router::add_port(
            &r,
            &sa,
            20,
            ipa(10, 0, 1, 254),
            QueueDisc::DropTail { capacity: 32 },
        );
        let pb = Router::add_port(
            &r,
            &sb,
            21,
            ipa(10, 0, 2, 254),
            QueueDisc::DropTail { capacity: 32 },
        );
        let mask = ipa(255, 255, 255, 0);
        {
            let mut rr = r.borrow_mut();
            rr.add_route(RouterRoute {
                net: ipa(10, 0, 1, 0),
                mask,
                port: pa,
                next_hop: None,
                alt: None,
            });
            rr.add_route(RouterRoute {
                net: ipa(10, 0, 2, 0),
                mask,
                port: pb,
                next_hop: None,
                alt: None,
            });
        }
        let a = HostStation::new(&sa, 1, ipa(10, 0, 1, 1));
        let b = HostStation::new(&sb, 2, ipa(10, 0, 2, 1));
        (sim, sa, sb, r, a, b)
    }

    #[test]
    fn switch_learns_floods_and_forwards() {
        let mut sim = Sim::new(3);
        let s1 = Ethernet::new(EtherTiming::ten_megabit());
        let s2 = Ethernet::new(EtherTiming::ten_megabit());
        let sw = Switch::new(&mut sim);
        Switch::add_port(&sw, &s1, 10, QueueDisc::DropTail { capacity: 32 });
        Switch::add_port(&sw, &s2, 11, QueueDisc::DropTail { capacity: 32 });
        let a = HostStation::new(&s1, 1, ipa(10, 0, 0, 1));
        let b = HostStation::new(&s2, 2, ipa(10, 0, 0, 2));

        // A does not know where B is: ARP broadcast floods through the
        // switch, B answers, and the reply is unicast-forwarded back
        // (the switch learned A's port from the broadcast).
        let req = ArpPacket::request(a.borrow().mac, ipa(10, 0, 0, 1), ipa(10, 0, 0, 2));
        let eh = EthernetHeader {
            dst: EtherAddr::BROADCAST,
            src: a.borrow().mac,
            ethertype: EtherType::Arp,
        };
        let mut f = eh.encode().to_vec();
        f.extend_from_slice(&req.encode());
        Ethernet::transmit(&s1, &mut sim, SimTime::ZERO, f);
        sim.run_to_idle();

        let st = sw.borrow().stats();
        assert_eq!(st.flooded, 1, "ARP request floods");
        assert_eq!(st.forwarded, 1, "ARP reply is unicast-forwarded");

        // Now unicast IP across the switch.
        let bmac = b.borrow().mac;
        a.borrow()
            .send_ip(&mut sim, bmac, ipa(10, 0, 0, 2), 64, b"hi");
        sim.run_to_idle();
        assert_eq!(b.borrow().received.len(), 1);
        assert_eq!(sw.borrow().stats().forwarded, 2);
        assert_eq!(sw.borrow().stats().tail_drops, 0);
    }

    #[test]
    fn router_forwards_and_decrements_ttl() {
        let (mut sim, _sa, _sb, r, a, b) = two_seg_router();
        let rmac = EtherAddr::local(20);
        a.borrow()
            .send_ip(&mut sim, rmac, ipa(10, 0, 2, 1), 64, b"payload");
        sim.run_to_idle();
        let got = &b.borrow().received;
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1.ttl, 63, "store-and-forward decrements TTL");
        assert_eq!(got[0].2, b"payload");
        let st = r.borrow().stats();
        assert_eq!(st.forwarded, 1);
        assert_eq!(st.arp_requests, 1, "router resolved B before sending");
        assert_eq!(r.borrow().drops().total(), 0);
    }

    #[test]
    fn ttl_expiry_drops_and_sends_time_exceeded() {
        let (mut sim, _sa, _sb, r, a, b) = two_seg_router();
        let rmac = EtherAddr::local(20);
        a.borrow()
            .send_ip(&mut sim, rmac, ipa(10, 0, 2, 1), 1, b"dying");
        sim.run_to_idle();
        assert!(b.borrow().received.is_empty(), "packet died at the router");
        assert_eq!(r.borrow().drops().get(DropReason::TtlExpired), 1);
        assert_eq!(r.borrow().stats().time_exceeded_sent, 1);
        let got = &a.borrow().received;
        assert_eq!(got.len(), 1, "ICMP Time Exceeded came back");
        assert_eq!(got[0].1.src, ipa(10, 0, 1, 254));
        assert_eq!(got[0].1.proto, IpProto::Icmp);
        let msg = IcmpMessage::parse(&got[0].2).unwrap();
        assert!(matches!(msg.kind, IcmpType::TimeExceeded(0)));
        // The quote holds the expired header: our source address.
        let quoted = Ipv4Header::parse(&msg.payload).unwrap();
        assert_eq!(quoted.src, ipa(10, 0, 1, 1));
    }

    #[test]
    fn bounded_queue_tail_drops_under_burst() {
        let mut sim = Sim::new(11);
        let sa = Ethernet::new(EtherTiming::ten_megabit());
        // Slow egress: 1 Mb/s, so back-to-back arrivals pile up.
        let sb = Ethernet::new(EtherTiming::megabit(1));
        let r = Router::new(&mut sim);
        let pa = Router::add_port(
            &r,
            &sa,
            20,
            ipa(10, 0, 1, 254),
            QueueDisc::DropTail { capacity: 32 },
        );
        let pb = Router::add_port(
            &r,
            &sb,
            21,
            ipa(10, 0, 2, 254),
            QueueDisc::DropTail { capacity: 2 },
        );
        let mask = ipa(255, 255, 255, 0);
        {
            let mut rr = r.borrow_mut();
            rr.add_route(RouterRoute {
                net: ipa(10, 0, 1, 0),
                mask,
                port: pa,
                next_hop: None,
                alt: None,
            });
            rr.add_route(RouterRoute {
                net: ipa(10, 0, 2, 0),
                mask,
                port: pb,
                next_hop: None,
                alt: None,
            });
        }
        let a = HostStation::new(&sa, 1, ipa(10, 0, 1, 1));
        let b = HostStation::new(&sb, 2, ipa(10, 0, 2, 1));

        // Warm the ARP cache so the burst is not absorbed by parking.
        let rmac = EtherAddr::local(20);
        a.borrow()
            .send_ip(&mut sim, rmac, ipa(10, 0, 2, 1), 64, b"w");
        sim.run_to_idle();
        assert_eq!(b.borrow().received.len(), 1);

        for i in 0..8u8 {
            a.borrow()
                .send_ip(&mut sim, rmac, ipa(10, 0, 2, 1), 64, &[i; 400]);
        }
        sim.run_to_idle();
        let st = r.borrow().stats();
        assert!(st.tail_drops > 0, "burst overflows the 2-deep queue");
        assert_eq!(
            r.borrow().drops().get(DropReason::QueueTailDrop),
            st.tail_drops
        );
        assert_eq!(
            b.borrow().received.len() as u64 + st.tail_drops,
            9,
            "every packet either arrived or was counted as a tail drop"
        );
    }

    #[test]
    fn red_early_drops_before_the_hard_limit() {
        let mut sim = Sim::new(13);
        let sa = Ethernet::new(EtherTiming::ten_megabit());
        let sb = Ethernet::new(EtherTiming::megabit(1));
        let r = Router::new(&mut sim);
        let pa = Router::add_port(
            &r,
            &sa,
            20,
            ipa(10, 0, 1, 254),
            QueueDisc::DropTail { capacity: 32 },
        );
        // Degenerate RED: any queued frame forces an early drop, so the
        // test is deterministic without relying on the drop draw.
        let pb = Router::add_port(
            &r,
            &sb,
            21,
            ipa(10, 0, 2, 254),
            QueueDisc::Red {
                capacity: 64,
                min_th: 0,
                max_th: 1,
                max_p: 1.0,
            },
        );
        let mask = ipa(255, 255, 255, 0);
        {
            let mut rr = r.borrow_mut();
            rr.add_route(RouterRoute {
                net: ipa(10, 0, 1, 0),
                mask,
                port: pa,
                next_hop: None,
                alt: None,
            });
            rr.add_route(RouterRoute {
                net: ipa(10, 0, 2, 0),
                mask,
                port: pb,
                next_hop: None,
                alt: None,
            });
        }
        let a = HostStation::new(&sa, 1, ipa(10, 0, 1, 1));
        let b = HostStation::new(&sb, 2, ipa(10, 0, 2, 1));
        let rmac = EtherAddr::local(20);
        a.borrow()
            .send_ip(&mut sim, rmac, ipa(10, 0, 2, 1), 64, b"w");
        sim.run_to_idle();
        for i in 0..4u8 {
            a.borrow()
                .send_ip(&mut sim, rmac, ipa(10, 0, 2, 1), 64, &[i; 400]);
        }
        sim.run_to_idle();
        let st = r.borrow().stats();
        assert!(st.red_drops > 0, "RED fired below the hard capacity");
        assert_eq!(st.tail_drops, 0, "hard limit never reached");
        assert_eq!(
            r.borrow().drops().get(DropReason::RedEarlyDrop),
            st.red_drops
        );
        assert_eq!(b.borrow().received.len() as u64 + st.red_drops, 5);
    }

    #[test]
    fn scripted_link_queue_full_forces_a_tail_drop() {
        let (mut sim, _sa, _sb, r, a, b) = two_seg_router();
        let plane = FaultPlane::shared();
        plane.borrow_mut().set_rng(psd_sim::Rng::new(1));
        // Visit 1: the warm-up packet resolved ARP, so the data packet
        // is the second egress enqueue (visit numbering starts at 0 for
        // the ARP request itself).
        r.borrow_mut().set_fault_plane(Some(plane.clone()));
        let rmac = EtherAddr::local(20);
        a.borrow()
            .send_ip(&mut sim, rmac, ipa(10, 0, 2, 1), 64, b"w");
        sim.run_to_idle();
        let visits_so_far = plane.borrow().visits(FaultSite::LinkQueueFull);
        plane
            .borrow_mut()
            .script(FaultSite::LinkQueueFull, &[visits_so_far]);
        a.borrow()
            .send_ip(&mut sim, rmac, ipa(10, 0, 2, 1), 64, b"x");
        sim.run_to_idle();
        assert_eq!(r.borrow().stats().tail_drops, 1);
        assert_eq!(r.borrow().drops().get(DropReason::QueueTailDrop), 1);
        assert_eq!(b.borrow().received.len(), 1, "only the warm-up arrived");
    }
}
