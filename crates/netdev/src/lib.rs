//! The simulated 10 Mb/s Ethernet segment.
//!
//! Stations (host network interfaces) attach to a shared [`Ethernet`]
//! medium. Transmissions serialize on the wire and take real 10 Mb/s
//! time: `(max(len, 60) + 4 FCS) × 0.8 µs/byte`, which reproduces the
//! paper's Table 4 network transit figures exactly (51 µs for a minimum
//! frame, 1214 µs for a full 1514-byte TCP frame).
//!
//! The medium supports deterministic fault injection — loss (independent
//! and bursty), duplication, reordering, and link-down windows — all
//! driven through the attached [`psd_sim::fault`] plane, so every wire
//! fault is a named, scripted or seeded [`FaultSite`] and the medium
//! itself consumes no randomness. A [`FrameTrace`] can be attached to
//! capture traffic for assertions and debugging.
//!
//! The [`topology`] module composes segments into multi-hop networks:
//! learning switches and store-and-forward IP routers with bounded
//! drop-tail / RED egress queues.

use std::cell::RefCell;
use std::rc::Rc;

use psd_sim::probe::ProbeHandle;
use psd_sim::{
    DropCounters, DropReason, FaultPlaneHandle, FaultSite, Layer, Sim, SimTime, Stage, Terminal,
    TraceHandle, TraceId,
};
use psd_wire::{EtherAddr, EthernetHeader};

pub mod topology;

/// Minimum frame length on the wire (without FCS).
pub const MIN_FRAME: usize = 60;
/// Maximum frame length on the wire (without FCS).
pub const MAX_FRAME: usize = 1514;
/// FCS length added on the wire.
pub const FCS_LEN: usize = 4;

/// Wire timing for a 10 Mb/s Ethernet (100 ns per bit).
#[derive(Clone, Copy, Debug)]
pub struct EtherTiming {
    /// Nanoseconds per bit (100 for 10 Mb/s).
    pub bit_ns: u64,
}

impl EtherTiming {
    /// Standard 10 Mb/s Ethernet.
    pub fn ten_megabit() -> EtherTiming {
        EtherTiming { bit_ns: 100 }
    }

    /// A segment running at `mbps` megabits per second (10 Mb/s is the
    /// paper's wire; routers can join faster or slower links).
    pub fn megabit(mbps: u64) -> EtherTiming {
        assert!(mbps > 0 && 1000 % mbps == 0, "rate must divide 1000 Mb/s");
        EtherTiming {
            bit_ns: 1000 / mbps,
        }
    }

    /// The on-wire time for a frame of `len` bytes (header + payload,
    /// excluding FCS, which is added here).
    pub fn frame_time(&self, len: usize) -> SimTime {
        let wire_bytes = (len.max(MIN_FRAME) + FCS_LEN) as u64;
        SimTime::from_nanos(wire_bytes * 8 * self.bit_ns)
    }
}

/// A network interface attached to the segment.
pub trait Station {
    /// The station's MAC address, used for delivery filtering.
    fn mac(&self) -> EtherAddr;

    /// True if the station wants all frames regardless of destination.
    fn promiscuous(&self) -> bool {
        false
    }

    /// Called when a frame addressed to this station (or broadcast) has
    /// fully arrived.
    fn frame_arrived(&mut self, sim: &mut Sim, frame: Vec<u8>);
}

/// Traffic counters for the segment.
#[derive(Clone, Copy, Debug, Default)]
pub struct EtherStats {
    /// Frames handed to the medium.
    pub tx_frames: u64,
    /// Bytes handed to the medium (before min-frame padding).
    pub tx_bytes: u64,
    /// Frames dropped by fault injection.
    pub dropped: u64,
    /// Frames duplicated by fault injection.
    pub duplicated: u64,
    /// Frames reordered by fault injection.
    pub reordered: u64,
    /// Frames delivered to stations (one per receiving station).
    pub delivered: u64,
}

/// An optional capture of frames for tests and debugging.
#[derive(Debug, Default)]
pub struct FrameTrace {
    /// Captured `(time, frame)` pairs, in transmission order.
    pub frames: Vec<(SimTime, Vec<u8>)>,
}

/// The shared Ethernet medium.
pub struct Ethernet {
    timing: EtherTiming,
    /// Propagation delay added to every delivery (zero for the paper's
    /// LAN segment; raise it to model a WAN link behind a router port).
    propagation: SimTime,
    /// Extra delay applied to reordered and duplicated frames.
    reorder_delay: SimTime,
    stations: Vec<Rc<RefCell<dyn Station>>>,
    busy_until: SimTime,
    stats: EtherStats,
    /// Always-on per-reason drop counters: every frame the medium kills
    /// lands here with a typed reason, tracer attached or not.
    drops: DropCounters,
    probe: Option<ProbeHandle>,
    trace: Option<Rc<RefCell<FrameTrace>>>,
    /// Fault plane consulted per transmitted frame: [`FaultSite::LinkDown`]
    /// (flap / partition windows), [`FaultSite::WireBurstLoss`] (an
    /// injection drops the frame and the following `burst_len - 1`
    /// frames — correlated loss, the case that defeats fast retransmit
    /// and forces an RTO), then the independent per-frame sites
    /// [`FaultSite::WireLoss`] / [`FaultSite::WireDuplicate`] /
    /// [`FaultSite::WireReorder`]. With no plane attached (or an empty
    /// one) the medium is a perfect wire and consumes no randomness.
    fault: Option<FaultPlaneHandle>,
    /// Frames still to drop from an in-progress loss burst.
    burst_remaining: u32,
    /// Packet-lifecycle tracer: every transmitted frame gets a
    /// provenance id, a wire span, and a terminal state; each station
    /// delivery becomes a traced child packet.
    tracer: Option<TraceHandle>,
}

/// Shared handle to an [`Ethernet`].
pub type EthernetHandle = Rc<RefCell<Ethernet>>;

impl Ethernet {
    /// Creates a segment with the given timing. The medium itself is
    /// deterministic and owns no randomness: all faults come from an
    /// attached fault plane.
    pub fn new(timing: EtherTiming) -> EthernetHandle {
        Rc::new(RefCell::new(Ethernet {
            timing,
            propagation: SimTime::ZERO,
            reorder_delay: SimTime::from_millis(2),
            stations: Vec::new(),
            busy_until: SimTime::ZERO,
            stats: EtherStats::default(),
            drops: DropCounters::default(),
            probe: None,
            trace: None,
            fault: None,
            burst_remaining: 0,
            tracer: None,
        }))
    }

    /// A standard private 10 Mb/s segment with no faults.
    pub fn ten_megabit(_sim: &mut Sim) -> EthernetHandle {
        Ethernet::new(EtherTiming::ten_megabit())
    }

    /// Attaches a station.
    pub fn attach(&mut self, station: Rc<RefCell<dyn Station>>) {
        self.stations.push(station);
    }

    /// Attaches a latency probe recording network transit time.
    pub fn set_probe(&mut self, probe: Option<ProbeHandle>) {
        self.probe = probe;
    }

    /// Attaches a frame trace.
    pub fn set_trace(&mut self, trace: Option<Rc<RefCell<FrameTrace>>>) {
        self.trace = trace;
    }

    /// Sets the link propagation delay (zero by default; nonzero models
    /// a WAN link: every delivery arrives that much later while the
    /// wire is still only occupied for the serialization time).
    pub fn set_propagation(&mut self, propagation: SimTime) {
        self.propagation = propagation;
    }

    /// The link propagation delay.
    pub fn propagation(&self) -> SimTime {
        self.propagation
    }

    /// Sets the extra delay applied to reordered and duplicated frames.
    pub fn set_reorder_delay(&mut self, delay: SimTime) {
        self.reorder_delay = delay;
    }

    /// Attaches (or detaches) a fault plane. Each transmitted frame
    /// visits [`FaultSite::LinkDown`], the burst machinery
    /// ([`FaultSite::WireBurstLoss`]), then [`FaultSite::WireLoss`],
    /// [`FaultSite::WireDuplicate`] and [`FaultSite::WireReorder`]; an
    /// unarmed plane never consumes randomness, so attaching one is
    /// provably inert.
    pub fn set_fault_plane(&mut self, fault: Option<FaultPlaneHandle>) {
        self.fault = fault;
    }

    /// Attaches (or detaches) a packet-lifecycle tracer. Tracing never
    /// charges virtual time and never consumes randomness, so attaching
    /// one does not perturb the medium.
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>) {
        self.tracer = tracer;
    }

    /// Test hook: drop the next `n` frames unconditionally (a scripted
    /// loss burst at an exact point in a transfer).
    pub fn drop_next_frames(&mut self, n: u32) {
        self.burst_remaining = self.burst_remaining.max(n);
    }

    /// Current traffic counters.
    pub fn stats(&self) -> EtherStats {
        self.stats
    }

    /// Always-on per-reason drop counters for every frame the medium
    /// killed (fault injections, malformed frames, frames nobody was
    /// listening for).
    pub fn drops(&self) -> DropCounters {
        self.drops
    }

    /// The wire timing.
    pub fn timing(&self) -> EtherTiming {
        self.timing
    }

    /// Transmits `frame` onto the medium, the transmitter being ready at
    /// `ready`. Returns the time the frame finishes arriving (even if it
    /// will be dropped, since the sender cannot tell).
    ///
    /// Borrow discipline: `this` must not be mutably borrowed by the
    /// caller; delivery events borrow stations, never the caller.
    pub fn transmit(
        this: &EthernetHandle,
        sim: &mut Sim,
        ready: SimTime,
        frame: Vec<u8>,
    ) -> SimTime {
        Ethernet::transmit_impl(this, sim, ready, frame, None)
    }

    /// [`Ethernet::transmit`] for forwarding devices (switches,
    /// routers): `sender` is the transmitting station's own address,
    /// excluded from delivery. A forwarded frame keeps the original
    /// host's source MAC, so without this a promiscuous switch port
    /// would hear its own transmission and forward it forever.
    pub fn transmit_from(
        this: &EthernetHandle,
        sim: &mut Sim,
        ready: SimTime,
        frame: Vec<u8>,
        sender: EtherAddr,
    ) -> SimTime {
        Ethernet::transmit_impl(this, sim, ready, frame, Some(sender))
    }

    fn transmit_impl(
        this: &EthernetHandle,
        sim: &mut Sim,
        ready: SimTime,
        frame: Vec<u8>,
        exclude: Option<EtherAddr>,
    ) -> SimTime {
        let mut seg = this.borrow_mut();
        debug_assert!(frame.len() >= psd_wire::ETHER_HDR_LEN, "runt frame");
        seg.stats.tx_frames += 1;
        seg.stats.tx_bytes += frame.len() as u64;
        if let Some(trace) = &seg.trace {
            trace.borrow_mut().frames.push((ready, frame.clone()));
        }
        // The shared medium serializes transmissions (CSMA/CD without
        // collisions: the workloads here are request/response or one
        // one-way stream, so contention backoff is negligible). The
        // wire is occupied for the serialization time only; propagation
        // delays the delivery without blocking the next transmitter.
        let start = ready.max(seg.busy_until);
        let duration = seg.timing.frame_time(frame.len());
        seg.busy_until = start + duration;
        let arrival = start + duration + seg.propagation;
        if let Some(p) = &seg.probe {
            p.borrow_mut()
                .record(Layer::NetworkTransit, duration + seg.propagation);
        }
        // Provenance: the wire frame gets its own trace id and a wire
        // span; every loss below is a typed terminal state.
        let wire_tid = seg.tracer.as_ref().map(|t| {
            let mut tr = t.borrow_mut();
            let id = tr.begin_packet(start, None);
            tr.span_closed(id, Stage::Wire, start, arrival);
            id
        });

        let drop_frame = |seg: &mut Ethernet, reason: DropReason, event: &'static str| {
            seg.stats.dropped += 1;
            seg.drops.note(reason);
            if let (Some(t), Some(id)) = (&seg.tracer, wire_tid) {
                let mut tr = t.borrow_mut();
                tr.event(id, arrival, event);
                tr.terminal(id, arrival, Terminal::Dropped(reason));
            }
        };

        // Link down: a scripted visit range at this site models a flap
        // or one side of a partition — every frame in the window dies.
        let link_down = match &seg.fault {
            Some(f) => f.borrow_mut().should_inject(FaultSite::LinkDown),
            None => false,
        };
        if link_down {
            drop_frame(&mut seg, DropReason::LinkDown, "fault:link-down");
            return arrival;
        }

        // Burst loss (fault plane or the drop_next_frames hook): the
        // frame is consumed from an in-progress burst, or starts one.
        // Checked before the independent per-frame sites so an active
        // burst consumes no further plane visits; frames inside a burst
        // do not count as WireBurstLoss visits.
        if seg.burst_remaining > 0 {
            seg.burst_remaining -= 1;
            drop_frame(&mut seg, DropReason::FaultInjected, "fault:wire-burst");
            return arrival;
        }
        let plane_hit = match &seg.fault {
            Some(f) => f.borrow_mut().should_inject(FaultSite::WireBurstLoss),
            None => false,
        };
        if plane_hit {
            let burst = seg
                .fault
                .as_ref()
                .map(|f| f.borrow().burst_len())
                .unwrap_or(1);
            seg.burst_remaining = burst.saturating_sub(1);
            drop_frame(&mut seg, DropReason::FaultInjected, "fault:wire-burst");
            return arrival;
        }

        // Independent per-frame fault sites (the retired `FaultModel`'s
        // loss/duplicate/reorder, now first-class deterministic sites).
        let (lost, duplicated, reordered) = match &seg.fault {
            Some(f) => {
                let mut f = f.borrow_mut();
                let lost = f.should_inject(FaultSite::WireLoss);
                // A lost frame still visits the other sites so visit
                // numbering stays frame-aligned across all three.
                let duplicated = f.should_inject(FaultSite::WireDuplicate) && !lost;
                let reordered = f.should_inject(FaultSite::WireReorder) && !lost;
                (lost, duplicated, reordered)
            }
            None => (false, false, false),
        };
        if lost {
            drop_frame(&mut seg, DropReason::WireLoss, "fault:wire-loss");
            return arrival;
        }
        if duplicated {
            seg.stats.duplicated += 1;
        }
        if reordered {
            seg.stats.reordered += 1;
        }
        if let (Some(t), Some(id)) = (&seg.tracer, wire_tid) {
            let mut tr = t.borrow_mut();
            if duplicated {
                tr.event(id, arrival, "duplicate");
            }
            if reordered {
                tr.event(id, arrival, "reorder");
            }
        }
        let extra = seg.reorder_delay;
        drop(seg);

        let deliver_at = if reordered { arrival + extra } else { arrival };
        Ethernet::schedule_delivery(this, sim, deliver_at, frame.clone(), wire_tid, exclude);
        if duplicated {
            // The duplicate's deliveries are traced as parentless
            // children: the wire frame must terminate exactly once.
            Ethernet::schedule_delivery(this, sim, arrival + extra, frame, None, exclude);
        }
        arrival
    }

    fn schedule_delivery(
        this: &EthernetHandle,
        sim: &mut Sim,
        at: SimTime,
        frame: Vec<u8>,
        wire_tid: Option<TraceId>,
        exclude: Option<EtherAddr>,
    ) {
        let seg = this.clone();
        sim.at(at, move |sim| {
            let tracer = seg.borrow().tracer.clone();
            let hdr = match EthernetHeader::parse(&frame) {
                Ok(h) => h,
                Err(_) => {
                    seg.borrow_mut().drops.note(DropReason::MalformedFrame);
                    if let (Some(t), Some(id)) = (&tracer, wire_tid) {
                        t.borrow_mut().terminal(
                            id,
                            sim.now(),
                            Terminal::Dropped(DropReason::MalformedFrame),
                        );
                    }
                    return;
                }
            };
            // Snapshot receivers first so station callbacks can transmit
            // (re-borrowing the segment) without a double borrow.
            let receivers: Vec<Rc<RefCell<dyn Station>>> = {
                let seg_ref = seg.borrow();
                seg_ref
                    .stations
                    .iter()
                    .filter(|s| {
                        let st = s.borrow();
                        let mac = st.mac();
                        mac != hdr.src
                            && Some(mac) != exclude
                            && (hdr.dst.is_broadcast() || hdr.dst == mac || st.promiscuous())
                    })
                    .cloned()
                    .collect()
            };
            {
                let mut seg_mut = seg.borrow_mut();
                seg_mut.stats.delivered += receivers.len() as u64;
                if receivers.is_empty() {
                    seg_mut.drops.note(DropReason::NoReceiver);
                }
            }
            // The wire frame's terminal: handed to at least one station,
            // or addressed to nobody listening.
            if let (Some(t), Some(id)) = (&tracer, wire_tid) {
                let mut tr = t.borrow_mut();
                if receivers.is_empty() {
                    tr.terminal(id, sim.now(), Terminal::Dropped(DropReason::NoReceiver));
                } else {
                    tr.terminal(id, sim.now(), Terminal::Delivered);
                }
            }
            for station in receivers {
                // Each station's copy is a traced child of the wire
                // frame, current for the duration of the synchronous
                // receive path (asynchronous continuations re-establish
                // it from the id they capture at schedule time).
                let child = tracer.as_ref().map(|t| {
                    let mut tr = t.borrow_mut();
                    let c = tr.begin_packet(sim.now(), wire_tid);
                    tr.push_current(c);
                    c
                });
                station.borrow_mut().frame_arrived(sim, frame.clone());
                if child.is_some() {
                    if let Some(t) = &tracer {
                        t.borrow_mut().pop_current();
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_wire::EtherType;

    struct TestStation {
        mac: EtherAddr,
        promisc: bool,
        received: Vec<(SimTime, Vec<u8>)>,
    }

    impl TestStation {
        fn new(id: u32) -> Rc<RefCell<TestStation>> {
            Rc::new(RefCell::new(TestStation {
                mac: EtherAddr::local(id),
                promisc: false,
                received: Vec::new(),
            }))
        }
    }

    impl Station for TestStation {
        fn mac(&self) -> EtherAddr {
            self.mac
        }

        fn promiscuous(&self) -> bool {
            self.promisc
        }

        fn frame_arrived(&mut self, sim: &mut Sim, frame: Vec<u8>) {
            self.received.push((sim.now(), frame));
        }
    }

    fn frame(src: u32, dst: EtherAddr, payload_len: usize) -> Vec<u8> {
        let hdr = EthernetHeader {
            dst,
            src: EtherAddr::local(src),
            ethertype: EtherType::Ipv4,
        };
        let mut f = hdr.encode().to_vec();
        f.resize(psd_wire::ETHER_HDR_LEN + payload_len, 0xAB);
        f
    }

    #[test]
    fn frame_time_matches_paper_transit() {
        let t = EtherTiming::ten_megabit();
        // 1-byte UDP payload → 43-byte frame → padded to 60 + 4 FCS.
        assert_eq!(t.frame_time(43), SimTime::from_nanos(51_200));
        // Full TCP frame: 1514 + 4 FCS.
        assert_eq!(t.frame_time(1514), SimTime::from_nanos(1_214_400));
    }

    #[test]
    fn unicast_delivery_to_addressee_only() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let a = TestStation::new(1);
        let b = TestStation::new(2);
        let c = TestStation::new(3);
        for s in [&a, &b, &c] {
            seg.borrow_mut().attach(s.clone());
        }
        let f = frame(1, EtherAddr::local(2), 100);
        Ethernet::transmit(&seg, &mut sim, SimTime::ZERO, f);
        sim.run_to_idle();
        assert_eq!(a.borrow().received.len(), 0, "sender must not hear itself");
        assert_eq!(b.borrow().received.len(), 1);
        assert_eq!(c.borrow().received.len(), 0);
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let a = TestStation::new(1);
        let b = TestStation::new(2);
        let c = TestStation::new(3);
        for s in [&a, &b, &c] {
            seg.borrow_mut().attach(s.clone());
        }
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::BROADCAST, 50),
        );
        sim.run_to_idle();
        assert_eq!(a.borrow().received.len(), 0);
        assert_eq!(b.borrow().received.len(), 1);
        assert_eq!(c.borrow().received.len(), 1);
    }

    #[test]
    fn promiscuous_station_hears_all() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let a = TestStation::new(1);
        let b = TestStation::new(2);
        let snoop = TestStation::new(99);
        snoop.borrow_mut().promisc = true;
        for s in [&a, &b, &snoop] {
            seg.borrow_mut().attach(s.clone());
        }
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 10),
        );
        sim.run_to_idle();
        assert_eq!(snoop.borrow().received.len(), 1);
    }

    #[test]
    fn arrival_time_includes_wire_time() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::from_micros(100),
            frame(1, EtherAddr::local(2), 29),
        );
        sim.run_to_idle();
        let (at, _) = b.borrow().received[0].clone();
        // 100 µs start + 51.2 µs minimum frame.
        assert_eq!(at, SimTime::from_nanos(151_200));
    }

    #[test]
    fn medium_serializes_transmissions() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        let t1 = Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 1500),
        );
        let t2 = Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 1500),
        );
        assert_eq!(t1, SimTime::from_nanos(1_214_400));
        assert_eq!(
            t2,
            SimTime::from_nanos(2_428_800),
            "second frame queues behind first"
        );
        sim.run_to_idle();
        assert_eq!(b.borrow().received.len(), 2);
    }

    fn wire_plane(seed: u64) -> psd_sim::FaultPlaneHandle {
        let plane = psd_sim::FaultPlane::shared();
        plane.borrow_mut().set_rng(psd_sim::Rng::new(seed));
        plane
    }

    #[test]
    fn loss_drops_frames_deterministically() {
        let run = |seed: u64| {
            let mut sim = Sim::new(7);
            let seg = Ethernet::new(EtherTiming::ten_megabit());
            let plane = wire_plane(seed);
            plane.borrow_mut().arm(FaultSite::WireLoss, 0.5);
            seg.borrow_mut().set_fault_plane(Some(plane));
            let b = TestStation::new(2);
            seg.borrow_mut().attach(b.clone());
            for _ in 0..100 {
                let now = sim.now();
                Ethernet::transmit(&seg, &mut sim, now, frame(1, EtherAddr::local(2), 10));
                sim.run_to_idle();
            }
            let delivered = b.borrow().received.len();
            let stats = seg.borrow().stats();
            let drops = seg.borrow().drops();
            assert_eq!(delivered as u64 + stats.dropped, 100);
            assert_eq!(drops.get(DropReason::WireLoss), stats.dropped);
            delivered
        };
        let delivered = run(11);
        assert!(
            delivered > 20 && delivered < 80,
            "≈50% expected, got {delivered}"
        );
        assert_eq!(run(11), delivered, "same seed, same losses");
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut sim = Sim::new(3);
        let seg = Ethernet::new(EtherTiming::ten_megabit());
        let plane = psd_sim::FaultPlane::shared();
        plane.borrow_mut().script(FaultSite::WireDuplicate, &[0]);
        seg.borrow_mut().set_fault_plane(Some(plane));
        seg.borrow_mut().set_reorder_delay(SimTime::from_micros(10));
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 10),
        );
        sim.run_to_idle();
        assert_eq!(b.borrow().received.len(), 2);
        assert_eq!(seg.borrow().stats().duplicated, 1);
    }

    #[test]
    fn reorder_delays_past_successor() {
        let mut sim = Sim::new(5);
        let seg = Ethernet::new(EtherTiming::ten_megabit());
        let plane = psd_sim::FaultPlane::shared();
        plane.borrow_mut().script(FaultSite::WireReorder, &[0]);
        seg.borrow_mut().set_fault_plane(Some(plane));
        seg.borrow_mut().set_reorder_delay(SimTime::from_millis(5));
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        let mut f1 = frame(1, EtherAddr::local(2), 10);
        f1[20] = 1;
        Ethernet::transmit(&seg, &mut sim, SimTime::ZERO, f1);
        // Second frame sent later; visit 1 is not scripted.
        let mut f2 = frame(1, EtherAddr::local(2), 10);
        f2[20] = 2;
        Ethernet::transmit(&seg, &mut sim, SimTime::from_micros(100), f2);
        sim.run_to_idle();
        let rx = &b.borrow().received;
        assert_eq!(rx.len(), 2);
        assert_eq!(rx[0].1[20], 2, "second frame should arrive first");
        assert_eq!(rx[1].1[20], 1);
    }

    #[test]
    fn link_down_window_drops_and_heals() {
        let mut sim = Sim::new(9);
        let seg = Ethernet::new(EtherTiming::ten_megabit());
        let plane = psd_sim::FaultPlane::shared();
        // Frames 1..3 hit a down link; frame 0 and frames ≥ 3 pass.
        plane.borrow_mut().script_range(FaultSite::LinkDown, 1, 3);
        seg.borrow_mut().set_fault_plane(Some(plane));
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        for _ in 0..5 {
            let now = sim.now();
            Ethernet::transmit(&seg, &mut sim, now, frame(1, EtherAddr::local(2), 10));
            sim.run_to_idle();
        }
        assert_eq!(b.borrow().received.len(), 3);
        assert_eq!(seg.borrow().drops().get(DropReason::LinkDown), 2);
    }

    #[test]
    fn propagation_delays_delivery_without_occupying_the_wire() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::new(EtherTiming::ten_megabit());
        seg.borrow_mut().set_propagation(SimTime::from_millis(10));
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        let t1 = Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 29),
        );
        // 51.2 µs serialization + 10 ms propagation.
        assert_eq!(t1, SimTime::from_nanos(10_051_200));
        // The second frame serializes right behind the first: the wire
        // is free after 51.2 µs, not after the propagation delay.
        let t2 = Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 29),
        );
        assert_eq!(t2, SimTime::from_nanos(10_102_400));
        sim.run_to_idle();
        assert_eq!(b.borrow().received.len(), 2);
    }

    #[test]
    fn trace_captures_frames() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let trace = Rc::new(RefCell::new(FrameTrace::default()));
        seg.borrow_mut().set_trace(Some(trace.clone()));
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 10),
        );
        sim.run_to_idle();
        assert_eq!(trace.borrow().frames.len(), 1);
    }

    #[test]
    fn stats_count_traffic() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 100),
        );
        sim.run_to_idle();
        let s = seg.borrow().stats();
        assert_eq!(s.tx_frames, 1);
        assert_eq!(s.tx_bytes, 114);
        assert_eq!(s.delivered, 1);
    }
}
