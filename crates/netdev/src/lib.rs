//! The simulated 10 Mb/s Ethernet segment.
//!
//! Stations (host network interfaces) attach to a shared [`Ethernet`]
//! medium. Transmissions serialize on the wire and take real 10 Mb/s
//! time: `(max(len, 60) + 4 FCS) × 0.8 µs/byte`, which reproduces the
//! paper's Table 4 network transit figures exactly (51 µs for a minimum
//! frame, 1214 µs for a full 1514-byte TCP frame).
//!
//! The medium supports deterministic fault injection — loss, duplication
//! and reordering — used by the TCP recovery tests and the failure
//! benchmarks. A [`FrameTrace`] can be attached to capture traffic for
//! assertions and debugging.

use std::cell::RefCell;
use std::rc::Rc;

use psd_sim::probe::ProbeHandle;
use psd_sim::{
    DropReason, FaultPlaneHandle, FaultSite, Layer, Sim, SimTime, Stage, Terminal, TraceHandle,
    TraceId,
};
use psd_wire::{EtherAddr, EthernetHeader};

/// Minimum frame length on the wire (without FCS).
pub const MIN_FRAME: usize = 60;
/// Maximum frame length on the wire (without FCS).
pub const MAX_FRAME: usize = 1514;
/// FCS length added on the wire.
pub const FCS_LEN: usize = 4;

/// Wire timing for a 10 Mb/s Ethernet (100 ns per bit).
#[derive(Clone, Copy, Debug)]
pub struct EtherTiming {
    /// Nanoseconds per bit (100 for 10 Mb/s).
    pub bit_ns: u64,
}

impl EtherTiming {
    /// Standard 10 Mb/s Ethernet.
    pub fn ten_megabit() -> EtherTiming {
        EtherTiming { bit_ns: 100 }
    }

    /// The on-wire time for a frame of `len` bytes (header + payload,
    /// excluding FCS, which is added here).
    pub fn frame_time(&self, len: usize) -> SimTime {
        let wire_bytes = (len.max(MIN_FRAME) + FCS_LEN) as u64;
        SimTime::from_nanos(wire_bytes * 8 * self.bit_ns)
    }
}

/// Deterministic fault injection parameters.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultModel {
    /// Probability a frame is lost.
    pub loss: f64,
    /// Probability a frame is duplicated.
    pub duplicate: f64,
    /// Probability a frame is delayed past its successors.
    pub reorder: f64,
    /// Extra delay applied to reordered (and duplicated) frames.
    pub reorder_delay: SimTime,
}

impl FaultModel {
    /// A perfect wire.
    pub fn none() -> FaultModel {
        FaultModel::default()
    }

    /// A lossy wire with the given loss probability.
    pub fn lossy(loss: f64) -> FaultModel {
        FaultModel {
            loss,
            ..FaultModel::default()
        }
    }
}

/// A network interface attached to the segment.
pub trait Station {
    /// The station's MAC address, used for delivery filtering.
    fn mac(&self) -> EtherAddr;

    /// True if the station wants all frames regardless of destination.
    fn promiscuous(&self) -> bool {
        false
    }

    /// Called when a frame addressed to this station (or broadcast) has
    /// fully arrived.
    fn frame_arrived(&mut self, sim: &mut Sim, frame: Vec<u8>);
}

/// Traffic counters for the segment.
#[derive(Clone, Copy, Debug, Default)]
pub struct EtherStats {
    /// Frames handed to the medium.
    pub tx_frames: u64,
    /// Bytes handed to the medium (before min-frame padding).
    pub tx_bytes: u64,
    /// Frames dropped by fault injection.
    pub dropped: u64,
    /// Frames duplicated by fault injection.
    pub duplicated: u64,
    /// Frames reordered by fault injection.
    pub reordered: u64,
    /// Frames delivered to stations (one per receiving station).
    pub delivered: u64,
}

/// An optional capture of frames for tests and debugging.
#[derive(Debug, Default)]
pub struct FrameTrace {
    /// Captured `(time, frame)` pairs, in transmission order.
    pub frames: Vec<(SimTime, Vec<u8>)>,
}

/// The shared Ethernet medium.
pub struct Ethernet {
    timing: EtherTiming,
    faults: FaultModel,
    stations: Vec<Rc<RefCell<dyn Station>>>,
    busy_until: SimTime,
    rng: psd_sim::Rng,
    stats: EtherStats,
    probe: Option<ProbeHandle>,
    trace: Option<Rc<RefCell<FrameTrace>>>,
    /// Fault plane consulted per transmitted frame at
    /// [`FaultSite::WireBurstLoss`]; an injection drops the frame and
    /// the following `burst_len - 1` frames (correlated loss, the case
    /// that defeats fast retransmit and forces an RTO).
    fault: Option<FaultPlaneHandle>,
    /// Frames still to drop from an in-progress loss burst.
    burst_remaining: u32,
    /// Packet-lifecycle tracer: every transmitted frame gets a
    /// provenance id, a wire span, and a terminal state; each station
    /// delivery becomes a traced child packet.
    tracer: Option<TraceHandle>,
}

/// Shared handle to an [`Ethernet`].
pub type EthernetHandle = Rc<RefCell<Ethernet>>;

impl Ethernet {
    /// Creates a segment with the given timing and fault model. The
    /// segment forks its own PRNG stream from the simulation.
    pub fn new(sim: &mut Sim, timing: EtherTiming, faults: FaultModel) -> EthernetHandle {
        Rc::new(RefCell::new(Ethernet {
            timing,
            faults,
            stations: Vec::new(),
            busy_until: SimTime::ZERO,
            rng: sim.rng().fork(),
            stats: EtherStats::default(),
            probe: None,
            trace: None,
            fault: None,
            burst_remaining: 0,
            tracer: None,
        }))
    }

    /// A standard private 10 Mb/s segment with no faults.
    pub fn ten_megabit(sim: &mut Sim) -> EthernetHandle {
        Ethernet::new(sim, EtherTiming::ten_megabit(), FaultModel::none())
    }

    /// Attaches a station.
    pub fn attach(&mut self, station: Rc<RefCell<dyn Station>>) {
        self.stations.push(station);
    }

    /// Attaches a latency probe recording network transit time.
    pub fn set_probe(&mut self, probe: Option<ProbeHandle>) {
        self.probe = probe;
    }

    /// Attaches a frame trace.
    pub fn set_trace(&mut self, trace: Option<Rc<RefCell<FrameTrace>>>) {
        self.trace = trace;
    }

    /// Replaces the fault model.
    pub fn set_faults(&mut self, faults: FaultModel) {
        self.faults = faults;
    }

    /// Attaches (or detaches) a fault plane. Each transmitted frame
    /// visits [`FaultSite::WireBurstLoss`]; an unarmed plane never
    /// consumes randomness, so attaching one does not perturb the
    /// medium's own loss/duplication/reorder draws.
    pub fn set_fault_plane(&mut self, fault: Option<FaultPlaneHandle>) {
        self.fault = fault;
    }

    /// Attaches (or detaches) a packet-lifecycle tracer. Tracing never
    /// charges virtual time and never consumes randomness, so attaching
    /// one does not perturb the medium.
    pub fn set_tracer(&mut self, tracer: Option<TraceHandle>) {
        self.tracer = tracer;
    }

    /// Test hook: drop the next `n` frames unconditionally (a scripted
    /// loss burst at an exact point in a transfer).
    pub fn drop_next_frames(&mut self, n: u32) {
        self.burst_remaining = self.burst_remaining.max(n);
    }

    /// Current traffic counters.
    pub fn stats(&self) -> EtherStats {
        self.stats
    }

    /// The wire timing.
    pub fn timing(&self) -> EtherTiming {
        self.timing
    }

    /// Transmits `frame` onto the medium, the transmitter being ready at
    /// `ready`. Returns the time the frame finishes arriving (even if it
    /// will be dropped, since the sender cannot tell).
    ///
    /// Borrow discipline: `this` must not be mutably borrowed by the
    /// caller; delivery events borrow stations, never the caller.
    pub fn transmit(
        this: &EthernetHandle,
        sim: &mut Sim,
        ready: SimTime,
        frame: Vec<u8>,
    ) -> SimTime {
        let mut seg = this.borrow_mut();
        debug_assert!(frame.len() >= psd_wire::ETHER_HDR_LEN, "runt frame");
        seg.stats.tx_frames += 1;
        seg.stats.tx_bytes += frame.len() as u64;
        if let Some(trace) = &seg.trace {
            trace.borrow_mut().frames.push((ready, frame.clone()));
        }
        // The shared medium serializes transmissions (CSMA/CD without
        // collisions: the workloads here are request/response or one
        // one-way stream, so contention backoff is negligible).
        let start = ready.max(seg.busy_until);
        let duration = seg.timing.frame_time(frame.len());
        let arrival = start + duration;
        seg.busy_until = arrival;
        if let Some(p) = &seg.probe {
            p.borrow_mut().record(Layer::NetworkTransit, duration);
        }
        // Provenance: the wire frame gets its own trace id and a wire
        // span; every loss below is a typed terminal state.
        let wire_tid = seg.tracer.as_ref().map(|t| {
            let mut tr = t.borrow_mut();
            let id = tr.begin_packet(start, None);
            tr.span_closed(id, Stage::Wire, start, arrival);
            id
        });

        // Burst loss (fault plane or the drop_next_frames hook): the
        // frame is consumed from an in-progress burst, or starts one.
        // Checked before the i.i.d. draws so an active burst does not
        // consume the medium's own randomness; frames inside a burst
        // do not count as WireBurstLoss visits.
        if seg.burst_remaining > 0 {
            seg.burst_remaining -= 1;
            seg.stats.dropped += 1;
            if let (Some(t), Some(id)) = (&seg.tracer, wire_tid) {
                let mut tr = t.borrow_mut();
                tr.event(id, arrival, "fault:wire-burst");
                tr.terminal(id, arrival, Terminal::Dropped(DropReason::FaultInjected));
            }
            return arrival;
        }
        let plane_hit = match &seg.fault {
            Some(f) => f.borrow_mut().should_inject(FaultSite::WireBurstLoss),
            None => false,
        };
        if plane_hit {
            let burst = seg
                .fault
                .as_ref()
                .map(|f| f.borrow().burst_len())
                .unwrap_or(1);
            seg.burst_remaining = burst.saturating_sub(1);
            seg.stats.dropped += 1;
            if let (Some(t), Some(id)) = (&seg.tracer, wire_tid) {
                let mut tr = t.borrow_mut();
                tr.event(id, arrival, "fault:wire-burst");
                tr.terminal(id, arrival, Terminal::Dropped(DropReason::FaultInjected));
            }
            return arrival;
        }

        // Fault injection.
        let faults = seg.faults;
        let lost = seg.rng.chance(faults.loss);
        let duplicated = !lost && seg.rng.chance(faults.duplicate);
        let reordered = !lost && seg.rng.chance(faults.reorder);
        if lost {
            seg.stats.dropped += 1;
            if let (Some(t), Some(id)) = (&seg.tracer, wire_tid) {
                t.borrow_mut()
                    .terminal(id, arrival, Terminal::Dropped(DropReason::WireLoss));
            }
            return arrival;
        }
        if duplicated {
            seg.stats.duplicated += 1;
        }
        if reordered {
            seg.stats.reordered += 1;
        }
        if let (Some(t), Some(id)) = (&seg.tracer, wire_tid) {
            let mut tr = t.borrow_mut();
            if duplicated {
                tr.event(id, arrival, "duplicate");
            }
            if reordered {
                tr.event(id, arrival, "reorder");
            }
        }
        let extra = seg.faults.reorder_delay;
        drop(seg);

        let deliver_at = if reordered { arrival + extra } else { arrival };
        Ethernet::schedule_delivery(this, sim, deliver_at, frame.clone(), wire_tid);
        if duplicated {
            // The duplicate's deliveries are traced as parentless
            // children: the wire frame must terminate exactly once.
            Ethernet::schedule_delivery(this, sim, arrival + extra, frame, None);
        }
        arrival
    }

    fn schedule_delivery(
        this: &EthernetHandle,
        sim: &mut Sim,
        at: SimTime,
        frame: Vec<u8>,
        wire_tid: Option<TraceId>,
    ) {
        let seg = this.clone();
        sim.at(at, move |sim| {
            let tracer = seg.borrow().tracer.clone();
            let hdr = match EthernetHeader::parse(&frame) {
                Ok(h) => h,
                Err(_) => {
                    if let (Some(t), Some(id)) = (&tracer, wire_tid) {
                        t.borrow_mut().terminal(
                            id,
                            sim.now(),
                            Terminal::Dropped(DropReason::MalformedFrame),
                        );
                    }
                    return;
                }
            };
            // Snapshot receivers first so station callbacks can transmit
            // (re-borrowing the segment) without a double borrow.
            let receivers: Vec<Rc<RefCell<dyn Station>>> = {
                let seg_ref = seg.borrow();
                seg_ref
                    .stations
                    .iter()
                    .filter(|s| {
                        let st = s.borrow();
                        let mac = st.mac();
                        mac != hdr.src
                            && (hdr.dst.is_broadcast() || hdr.dst == mac || st.promiscuous())
                    })
                    .cloned()
                    .collect()
            };
            seg.borrow_mut().stats.delivered += receivers.len() as u64;
            // The wire frame's terminal: handed to at least one station,
            // or addressed to nobody listening.
            if let (Some(t), Some(id)) = (&tracer, wire_tid) {
                let mut tr = t.borrow_mut();
                if receivers.is_empty() {
                    tr.terminal(id, sim.now(), Terminal::Dropped(DropReason::NoReceiver));
                } else {
                    tr.terminal(id, sim.now(), Terminal::Delivered);
                }
            }
            for station in receivers {
                // Each station's copy is a traced child of the wire
                // frame, current for the duration of the synchronous
                // receive path (asynchronous continuations re-establish
                // it from the id they capture at schedule time).
                let child = tracer.as_ref().map(|t| {
                    let mut tr = t.borrow_mut();
                    let c = tr.begin_packet(sim.now(), wire_tid);
                    tr.push_current(c);
                    c
                });
                station.borrow_mut().frame_arrived(sim, frame.clone());
                if child.is_some() {
                    if let Some(t) = &tracer {
                        t.borrow_mut().pop_current();
                    }
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_wire::EtherType;

    struct TestStation {
        mac: EtherAddr,
        promisc: bool,
        received: Vec<(SimTime, Vec<u8>)>,
    }

    impl TestStation {
        fn new(id: u32) -> Rc<RefCell<TestStation>> {
            Rc::new(RefCell::new(TestStation {
                mac: EtherAddr::local(id),
                promisc: false,
                received: Vec::new(),
            }))
        }
    }

    impl Station for TestStation {
        fn mac(&self) -> EtherAddr {
            self.mac
        }

        fn promiscuous(&self) -> bool {
            self.promisc
        }

        fn frame_arrived(&mut self, sim: &mut Sim, frame: Vec<u8>) {
            self.received.push((sim.now(), frame));
        }
    }

    fn frame(src: u32, dst: EtherAddr, payload_len: usize) -> Vec<u8> {
        let hdr = EthernetHeader {
            dst,
            src: EtherAddr::local(src),
            ethertype: EtherType::Ipv4,
        };
        let mut f = hdr.encode().to_vec();
        f.resize(psd_wire::ETHER_HDR_LEN + payload_len, 0xAB);
        f
    }

    #[test]
    fn frame_time_matches_paper_transit() {
        let t = EtherTiming::ten_megabit();
        // 1-byte UDP payload → 43-byte frame → padded to 60 + 4 FCS.
        assert_eq!(t.frame_time(43), SimTime::from_nanos(51_200));
        // Full TCP frame: 1514 + 4 FCS.
        assert_eq!(t.frame_time(1514), SimTime::from_nanos(1_214_400));
    }

    #[test]
    fn unicast_delivery_to_addressee_only() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let a = TestStation::new(1);
        let b = TestStation::new(2);
        let c = TestStation::new(3);
        for s in [&a, &b, &c] {
            seg.borrow_mut().attach(s.clone());
        }
        let f = frame(1, EtherAddr::local(2), 100);
        Ethernet::transmit(&seg, &mut sim, SimTime::ZERO, f);
        sim.run_to_idle();
        assert_eq!(a.borrow().received.len(), 0, "sender must not hear itself");
        assert_eq!(b.borrow().received.len(), 1);
        assert_eq!(c.borrow().received.len(), 0);
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let a = TestStation::new(1);
        let b = TestStation::new(2);
        let c = TestStation::new(3);
        for s in [&a, &b, &c] {
            seg.borrow_mut().attach(s.clone());
        }
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::BROADCAST, 50),
        );
        sim.run_to_idle();
        assert_eq!(a.borrow().received.len(), 0);
        assert_eq!(b.borrow().received.len(), 1);
        assert_eq!(c.borrow().received.len(), 1);
    }

    #[test]
    fn promiscuous_station_hears_all() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let a = TestStation::new(1);
        let b = TestStation::new(2);
        let snoop = TestStation::new(99);
        snoop.borrow_mut().promisc = true;
        for s in [&a, &b, &snoop] {
            seg.borrow_mut().attach(s.clone());
        }
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 10),
        );
        sim.run_to_idle();
        assert_eq!(snoop.borrow().received.len(), 1);
    }

    #[test]
    fn arrival_time_includes_wire_time() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::from_micros(100),
            frame(1, EtherAddr::local(2), 29),
        );
        sim.run_to_idle();
        let (at, _) = b.borrow().received[0].clone();
        // 100 µs start + 51.2 µs minimum frame.
        assert_eq!(at, SimTime::from_nanos(151_200));
    }

    #[test]
    fn medium_serializes_transmissions() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        let t1 = Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 1500),
        );
        let t2 = Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 1500),
        );
        assert_eq!(t1, SimTime::from_nanos(1_214_400));
        assert_eq!(
            t2,
            SimTime::from_nanos(2_428_800),
            "second frame queues behind first"
        );
        sim.run_to_idle();
        assert_eq!(b.borrow().received.len(), 2);
    }

    #[test]
    fn loss_drops_frames_deterministically() {
        let mut sim = Sim::new(7);
        let seg = Ethernet::new(&mut sim, EtherTiming::ten_megabit(), FaultModel::lossy(0.5));
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        for _ in 0..100 {
            let now = sim.now();
            Ethernet::transmit(&seg, &mut sim, now, frame(1, EtherAddr::local(2), 10));
            sim.run_to_idle();
        }
        let delivered = b.borrow().received.len();
        let stats = seg.borrow().stats();
        assert_eq!(delivered as u64 + stats.dropped, 100);
        assert!(
            delivered > 20 && delivered < 80,
            "≈50% expected, got {delivered}"
        );
    }

    #[test]
    fn duplication_delivers_twice() {
        let mut sim = Sim::new(3);
        let seg = Ethernet::new(
            &mut sim,
            EtherTiming::ten_megabit(),
            FaultModel {
                duplicate: 1.0,
                reorder_delay: SimTime::from_micros(10),
                ..FaultModel::default()
            },
        );
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 10),
        );
        sim.run_to_idle();
        assert_eq!(b.borrow().received.len(), 2);
    }

    #[test]
    fn reorder_delays_past_successor() {
        let mut sim = Sim::new(5);
        let seg = Ethernet::new(
            &mut sim,
            EtherTiming::ten_megabit(),
            FaultModel {
                reorder: 1.0,
                reorder_delay: SimTime::from_millis(5),
                ..FaultModel::default()
            },
        );
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        let mut f1 = frame(1, EtherAddr::local(2), 10);
        f1[20] = 1;
        Ethernet::transmit(&seg, &mut sim, SimTime::ZERO, f1);
        // Second frame sent later but with no faults.
        seg.borrow_mut().set_faults(FaultModel::none());
        let mut f2 = frame(1, EtherAddr::local(2), 10);
        f2[20] = 2;
        Ethernet::transmit(&seg, &mut sim, SimTime::from_micros(100), f2);
        sim.run_to_idle();
        let rx = &b.borrow().received;
        assert_eq!(rx.len(), 2);
        assert_eq!(rx[0].1[20], 2, "second frame should arrive first");
        assert_eq!(rx[1].1[20], 1);
    }

    #[test]
    fn trace_captures_frames() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let trace = Rc::new(RefCell::new(FrameTrace::default()));
        seg.borrow_mut().set_trace(Some(trace.clone()));
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 10),
        );
        sim.run_to_idle();
        assert_eq!(trace.borrow().frames.len(), 1);
    }

    #[test]
    fn stats_count_traffic() {
        let mut sim = Sim::new(1);
        let seg = Ethernet::ten_megabit(&mut sim);
        let b = TestStation::new(2);
        seg.borrow_mut().attach(b.clone());
        Ethernet::transmit(
            &seg,
            &mut sim,
            SimTime::ZERO,
            frame(1, EtherAddr::local(2), 100),
        );
        sim.run_to_idle();
        let s = seg.borrow().stats();
        assert_eq!(s.tx_frames, 1);
        assert_eq!(s.tx_bytes, 114);
        assert_eq!(s.delivered, 1);
    }
}
