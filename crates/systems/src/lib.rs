//! Whole-system assembly: the configurations of Table 2.
//!
//! A [`TestBed`] is two simulated hosts on one private 10 Mb/s
//! Ethernet, each built in one of the paper's architectures:
//!
//! | Config | Architecture | Paper row |
//! |---|---|---|
//! | [`SystemConfig::Mach25InKernel`] | protocols in the kernel | "Mach 2.5 In-Kernel" |
//! | [`SystemConfig::Ultrix42InKernel`] | protocols in the kernel | "Ultrix 4.2A In-Kernel" (DECstation only) |
//! | [`SystemConfig::Bsd386InKernel`] | protocols in the kernel | "386BSD In-Kernel" (Gateway only) |
//! | [`SystemConfig::UxServer`] | protocols in the OS server | "Mach 3.0+UX Server" |
//! | [`SystemConfig::Bnr2ssServer`] | protocols in the OS server | "Mach 3.0+BNR2SS Server" (Gateway only) |
//! | [`SystemConfig::LibraryIpc`] | decomposed, IPC receive path | "Mach 3.0+UX Library-IPC" |
//! | [`SystemConfig::LibraryShm`] | decomposed, shared-memory path | "Mach 3.0+UX Library-SHM" |
//! | [`SystemConfig::LibraryShmIpf`] | decomposed, integrated filter | "Mach 3.0+UX Library-SHM-IPF" |
//!
//! Every configuration runs the *same* protocol code
//! ([`psd_netstack`]); they differ only in placement and in the
//! user/kernel interface, exactly as in the paper.

use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

use psd_core::{AppHandle, AppLib};
use psd_kernel::{Kernel, KernelHandle, RxMode};
use psd_netdev::topology::{QueueDisc, Router, RouterHandle, RouterRoute, Switch, SwitchHandle};
use psd_netdev::{EtherTiming, Ethernet, EthernetHandle};
use psd_netstack::stack::StackHandle;
use psd_netstack::{NetStack, Placement, RouteTable};
use psd_server::{KernelNetIf, OsServer, PortNamespace, ServerHandle};
use psd_sim::{CostModel, Cpu, FaultSite, Platform, Sim, SimTime};
use psd_wire::EtherAddr;

pub use psd_sim::Platform as HostPlatform;

/// The system architectures compared in Table 2.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SystemConfig {
    /// Protocols in the Mach 2.5 kernel.
    Mach25InKernel,
    /// Protocols in the Ultrix 4.2A kernel (DECstation only).
    Ultrix42InKernel,
    /// Protocols in the 386BSD kernel (Gateway only).
    Bsd386InKernel,
    /// Protocols in CMU's UX single server on Mach 3.0.
    UxServer,
    /// Protocols in the BNR2SS single server on Mach 3.0 (Gateway
    /// only).
    Bnr2ssServer,
    /// The decomposed system with per-packet IPC delivery.
    LibraryIpc,
    /// The decomposed system with the shared-memory receive ring.
    LibraryShm,
    /// The decomposed system with the device-integrated packet filter.
    LibraryShmIpf,
}

impl SystemConfig {
    /// All configurations available on a platform, in Table 2 order.
    pub fn for_platform(platform: Platform) -> Vec<SystemConfig> {
        match platform {
            Platform::DecStation5000_200 => vec![
                SystemConfig::Mach25InKernel,
                SystemConfig::Ultrix42InKernel,
                SystemConfig::UxServer,
                SystemConfig::LibraryIpc,
                SystemConfig::LibraryShm,
                SystemConfig::LibraryShmIpf,
            ],
            Platform::Gateway486 => vec![
                SystemConfig::Mach25InKernel,
                SystemConfig::Bsd386InKernel,
                SystemConfig::UxServer,
                SystemConfig::Bnr2ssServer,
                SystemConfig::LibraryIpc,
                SystemConfig::LibraryShm,
            ],
        }
    }

    /// The row label used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            SystemConfig::Mach25InKernel => "Mach 2.5 In-Kernel",
            SystemConfig::Ultrix42InKernel => "Ultrix 4.2A In-Kernel",
            SystemConfig::Bsd386InKernel => "386BSD In-Kernel",
            SystemConfig::UxServer => "Mach 3.0+UX Server",
            SystemConfig::Bnr2ssServer => "Mach 3.0+BNR2SS Server",
            SystemConfig::LibraryIpc => "Mach 3.0+UX Library-IPC",
            SystemConfig::LibraryShm => "Mach 3.0+UX Library-SHM",
            SystemConfig::LibraryShmIpf => "Mach 3.0+UX Library-SHM-IPF",
        }
    }

    /// True for the decomposed (library) configurations.
    pub fn is_library(self) -> bool {
        matches!(
            self,
            SystemConfig::LibraryIpc | SystemConfig::LibraryShm | SystemConfig::LibraryShmIpf
        )
    }

    /// True for the in-kernel baselines.
    pub fn is_inkernel(self) -> bool {
        matches!(
            self,
            SystemConfig::Mach25InKernel
                | SystemConfig::Ultrix42InKernel
                | SystemConfig::Bsd386InKernel
        )
    }

    /// The receive-path variant for library configurations.
    pub fn rx_mode(self) -> Option<RxMode> {
        match self {
            SystemConfig::LibraryIpc => Some(RxMode::Ipc),
            SystemConfig::LibraryShm => Some(RxMode::Shm),
            SystemConfig::LibraryShmIpf => Some(RxMode::ShmIpf),
            _ => None,
        }
    }

    /// The cost model for this configuration on a platform.
    pub fn cost_model(self, platform: Platform) -> CostModel {
        match (self, platform) {
            (SystemConfig::Ultrix42InKernel, _) => CostModel::ultrix_4_2a(),
            (SystemConfig::Bsd386InKernel, _) => CostModel::bsd386(),
            _ => platform.cost_model(),
        }
    }

    /// The best receive-buffer size the paper found for this
    /// configuration (Table 2 "ReceiveBufferSize", in bytes).
    pub fn best_recv_buffer(self, platform: Platform) -> usize {
        let kb = match platform {
            Platform::DecStation5000_200 => match self {
                SystemConfig::Mach25InKernel => 24,
                SystemConfig::Ultrix42InKernel => 16,
                SystemConfig::UxServer => 24,
                SystemConfig::LibraryIpc => 24,
                SystemConfig::LibraryShm => 120,
                SystemConfig::LibraryShmIpf => 120,
                _ => 24,
            },
            Platform::Gateway486 => match self {
                SystemConfig::Mach25InKernel => 8,
                SystemConfig::Bsd386InKernel => 8,
                SystemConfig::UxServer => 16,
                SystemConfig::Bnr2ssServer => 112,
                SystemConfig::LibraryIpc => 24,
                SystemConfig::LibraryShm => 24,
                _ => 24,
            },
        };
        kb * 1024
    }
}

/// One simulated host.
pub struct Host {
    /// The host kernel.
    pub kernel: KernelHandle,
    /// The host CPU.
    pub cpu: Rc<RefCell<Cpu>>,
    /// The operating system server (absent in in-kernel baselines).
    pub server: Option<ServerHandle>,
    /// The in-kernel protocol stack (in-kernel baselines only).
    pub kern_stack: Option<StackHandle>,
    /// Shared port namespace for the in-kernel baseline.
    pub kern_ports: Option<Rc<RefCell<PortNamespace>>>,
    /// The host IP address.
    pub ip: Ipv4Addr,
    config: SystemConfig,
}

impl Host {
    /// Spawns an application on this host, in the host's architecture.
    pub fn spawn_app(&self) -> AppHandle {
        match self.config {
            c if c.is_inkernel() => AppLib::new_inkernel(
                &self.kernel,
                self.kern_stack.as_ref().expect("in-kernel stack"),
                self.kern_ports.as_ref().expect("in-kernel ports"),
            ),
            SystemConfig::UxServer | SystemConfig::Bnr2ssServer => {
                AppLib::new_server_based(&self.kernel, self.server.as_ref().expect("server"))
            }
            c => AppLib::new_library(
                &self.kernel,
                self.server.as_ref().expect("server"),
                c.rx_mode().expect("library config"),
            ),
        }
    }

    /// The stack holding protocol state on this host's OS side (the
    /// in-kernel stack or the server's stack).
    pub fn os_stack(&self) -> StackHandle {
        match (&self.kern_stack, &self.server) {
            (Some(k), _) => k.clone(),
            (None, Some(s)) => s.borrow().stack(),
            _ => unreachable!("host has either a kernel stack or a server"),
        }
    }
}

/// Two hosts on a private Ethernet, in one configuration.
pub struct TestBed {
    /// The simulation.
    pub sim: Sim,
    /// The wire.
    pub ether: EthernetHandle,
    /// The two hosts (`hosts[0]` = 10.0.0.1, `hosts[1]` = 10.0.0.2).
    pub hosts: Vec<Host>,
    /// The configuration under test.
    pub config: SystemConfig,
    /// The hardware platform.
    pub platform: Platform,
}

impl TestBed {
    /// Builds a two-host testbed.
    pub fn new(config: SystemConfig, platform: Platform, seed: u64) -> TestBed {
        let mut sim = Sim::new(seed);
        let ether = Ethernet::new(EtherTiming::ten_megabit());
        let costs = config.cost_model(platform);
        let mut hosts = Vec::new();
        for i in 0..2u32 {
            let ip = Ipv4Addr::new(10, 0, 0, 1 + i as u8);
            let routes = RouteTable::directly_attached(
                Ipv4Addr::new(10, 0, 0, 0),
                Ipv4Addr::new(255, 255, 255, 0),
            );
            let host = build_host(
                &mut sim,
                &ether,
                config,
                costs.clone(),
                ip,
                i + 1,
                platform,
                routes,
            );
            hosts.push(host);
        }
        TestBed {
            sim,
            ether,
            hosts,
            config,
            platform,
        }
    }

    /// Selects the packet-filter execution engine on every host kernel.
    /// The engines are observationally equivalent (same verdicts, same
    /// charged steps), so any table produced under `Compiled` is
    /// byte-identical to the `Interpret` run — CI diffs them.
    pub fn set_filter_engine(&self, engine: psd_filter::FilterEngine) {
        for h in &self.hosts {
            h.kernel.borrow_mut().set_filter_engine(engine);
        }
    }

    /// Sets the NEWAPI batching configuration (batch window size, GRO,
    /// GSO) on every host kernel. The default [`psd_kernel::BatchConfig`]
    /// is inert: batch size 1 takes exactly the unbatched code paths, so
    /// archived tables are unaffected unless a bed opts in.
    pub fn set_batch_config(&self, batch: psd_kernel::BatchConfig) {
        for h in &self.hosts {
            h.kernel.borrow_mut().set_batch_config(batch);
        }
    }

    /// Installs a selective-copy placement policy on every host kernel.
    /// Endpoint filters installed *after* this call are classified at
    /// install time; flows the policy marks kernel-resident get
    /// header-only ring delivery with the body copy deferred to an
    /// explicit pull.
    pub fn set_placement_policy(&self, policy: Option<psd_filter::PlacementPolicy>) {
        for h in &self.hosts {
            h.kernel.borrow_mut().set_placement_policy(policy.clone());
        }
    }

    /// Attaches a wire-only fault plane and arms the independent frame
    /// sites (probabilities of 0 leave a site disarmed). This is the
    /// deterministic replacement for the retired ad-hoc `FaultModel`:
    /// the same seed always produces the same loss/duplicate/reorder
    /// pattern, and the plane's draws never touch the simulation RNG.
    pub fn arm_wire_faults(
        &mut self,
        seed: u64,
        loss: f64,
        duplicate: f64,
        reorder: f64,
    ) -> psd_sim::FaultPlaneHandle {
        let plane = psd_sim::FaultPlane::shared();
        {
            let mut p = plane.borrow_mut();
            p.set_rng(psd_sim::Rng::new(
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
            ));
            if loss > 0.0 {
                p.arm(FaultSite::WireLoss, loss);
            }
            if duplicate > 0.0 {
                p.arm(FaultSite::WireDuplicate, duplicate);
            }
            if reorder > 0.0 {
                p.arm(FaultSite::WireReorder, reorder);
            }
        }
        self.ether.borrow_mut().set_fault_plane(Some(plane.clone()));
        plane
    }

    /// Attaches a fresh operation census to every host CPU, returning
    /// one handle per host (in `hosts` order). Counting never charges
    /// virtual time, so attaching a census leaves every timing result
    /// bit-identical.
    pub fn attach_census(&mut self) -> Vec<psd_sim::CensusHandle> {
        self.hosts
            .iter()
            .map(|h| {
                let census = psd_sim::Census::shared();
                h.cpu.borrow_mut().set_census(Some(census.clone()));
                census
            })
            .collect()
    }

    /// Attaches one shared fault plane to every host CPU and to the
    /// wire, returning its handle. The plane starts empty (nothing
    /// scripted, nothing armed): every fault site is visited and
    /// counted, but no randomness is consumed and no fault fires, so
    /// an attached-but-empty plane leaves every timing result
    /// bit-identical. The plane carries a private fixed-seed RNG;
    /// chaos tests overwrite it with `set_rng` before arming sites.
    /// Deliberately draws nothing from the simulation's RNG — forking
    /// it here would perturb later draws.
    pub fn attach_fault_plane(&mut self) -> psd_sim::FaultPlaneHandle {
        let plane = psd_sim::FaultPlane::shared();
        plane
            .borrow_mut()
            .set_rng(psd_sim::Rng::new(0x9E37_79B9_7F4A_7C15));
        for h in &self.hosts {
            h.cpu.borrow_mut().set_fault_plane(Some(plane.clone()));
        }
        self.ether.borrow_mut().set_fault_plane(Some(plane.clone()));
        plane
    }

    /// Attaches a fresh packet-lifecycle tracer to every host CPU and
    /// to the wire, returning its handle. Tracing never charges virtual
    /// time and consumes no randomness, so an attached tracer leaves
    /// every timing result bit-identical.
    pub fn attach_tracer(&mut self) -> psd_sim::TraceHandle {
        let tracer = psd_sim::Tracer::shared();
        self.attach_tracer_handle(&tracer);
        tracer
    }

    /// Attaches an existing tracer (shared across beds when a benchmark
    /// merges several runs into one trace file).
    pub fn attach_tracer_handle(&mut self, tracer: &psd_sim::TraceHandle) {
        for h in &self.hosts {
            h.cpu.borrow_mut().set_tracer(Some(tracer.clone()));
        }
        self.ether.borrow_mut().set_tracer(Some(tracer.clone()));
    }

    /// Attaches a fresh charged-time profiler to every host CPU,
    /// returning one handle per host (in `hosts` order). Profiling
    /// never charges virtual time and consumes no randomness, so an
    /// attached profiler leaves every timing result bit-identical; it
    /// guarantees exact conservation — attributed nanoseconds equal
    /// `Cpu::total_busy` on each host, bit-exact.
    pub fn attach_profilers(&mut self) -> Vec<psd_sim::ProfileHandle> {
        self.hosts
            .iter()
            .map(|h| {
                let prof = psd_sim::Profiler::shared();
                h.cpu.borrow_mut().set_profiler(Some(prof.clone()));
                prof
            })
            .collect()
    }

    /// Builds a gauge registry over both hosts (kernel interface and
    /// delivery-ring state, OS-side protocol state, the shared mbuf
    /// pool) and arms the engine's run-loop sampler at `period`.
    /// Sampling is inert: no events, no randomness, no virtual time —
    /// a sampled run stays byte-identical. Register any bed-specific
    /// gauges on the returned handle before the simulation first runs.
    pub fn attach_metrics(&mut self, period: psd_sim::SimTime) -> psd_sim::MetricsHandle {
        let metrics = psd_sim::Metrics::shared();
        {
            let mut m = metrics.borrow_mut();
            for (i, h) in self.hosts.iter().enumerate() {
                register_host_gauges(&mut m, i, h);
            }
            register_mbuf_gauges(&mut m);
        }
        self.sim.set_metrics_sampler(metrics.clone(), period);
        metrics
    }

    /// Runs the simulation until idle.
    pub fn settle(&mut self) {
        self.sim.run_to_idle();
    }

    /// Runs the simulation for a bounded virtual duration.
    pub fn run_for(&mut self, d: psd_sim::SimTime) {
        let deadline = self.sim.now() + d;
        self.sim.run_until(deadline);
    }
}

/// Two hosts at opposite ends of a multi-hop internet:
///
/// ```text
/// host0 ── segA0 ══ switch ══ segA1 ── R1 ═╦═ segM1 (primary) ═╦═ R2 ── segB ── host1
/// 10.0.1.1                     10.0.1.254  ╚═ segM2 (alternate)╝ 10.0.2.254     10.0.2.1
/// ```
///
/// The access segments are 10 Mb/s LANs; the two middle segments are
/// slower 2 Mb/s links with WAN propagation delay, so the routers'
/// bounded egress queues actually congest. R1→R2 primary egress runs
/// RED; everything else is drop-tail. Both routers carry an alternate
/// route over `segM2`, taken only when the fault plane injects
/// [`FaultSite::RouteFlip`]. Hosts reach each other through default
/// routes via their local router — the full gateway-ARP, TTL-decrement,
/// store-and-forward path.
pub struct MultiHopBed {
    /// The simulation.
    pub sim: Sim,
    /// All segments: `[segA0, segA1, segM1, segM2, segB]`.
    pub segments: Vec<EthernetHandle>,
    /// The access-side learning switch.
    pub switch: SwitchHandle,
    /// The two routers `[r1, r2]`.
    pub routers: Vec<RouterHandle>,
    /// The two hosts (`hosts[0]` = 10.0.1.1, `hosts[1]` = 10.0.2.1).
    pub hosts: Vec<Host>,
    /// The configuration under test.
    pub config: SystemConfig,
    /// The hardware platform.
    pub platform: Platform,
}

/// Index of the middle primary segment in [`MultiHopBed::segments`].
pub const SEG_MID_PRIMARY: usize = 2;
/// Index of the middle alternate segment in [`MultiHopBed::segments`].
pub const SEG_MID_ALTERNATE: usize = 3;

impl MultiHopBed {
    /// Builds the five-segment diamond topology above.
    pub fn new(config: SystemConfig, platform: Platform, seed: u64) -> MultiHopBed {
        let mut sim = Sim::new(seed);
        let ip = Ipv4Addr::new;
        let mask = Ipv4Addr::new(255, 255, 255, 0);

        let seg_a0 = Ethernet::new(EtherTiming::ten_megabit());
        let seg_a1 = Ethernet::new(EtherTiming::ten_megabit());
        let seg_m1 = Ethernet::new(EtherTiming::megabit(2));
        let seg_m2 = Ethernet::new(EtherTiming::megabit(2));
        let seg_b = Ethernet::new(EtherTiming::ten_megabit());
        // WAN propagation on the middle links: ~10 ms RTT end to end.
        seg_m1.borrow_mut().set_propagation(SimTime::from_millis(5));
        seg_m2.borrow_mut().set_propagation(SimTime::from_millis(5));

        // Devices fork the sim RNG at construction, so build order is
        // part of the deterministic contract: switch, R1, R2.
        let switch = Switch::new(&mut sim);
        Switch::add_port(&switch, &seg_a0, 10, QueueDisc::DropTail { capacity: 32 });
        Switch::add_port(&switch, &seg_a1, 11, QueueDisc::DropTail { capacity: 32 });

        let tail = |capacity| QueueDisc::DropTail { capacity };
        let red = QueueDisc::Red {
            capacity: 16,
            min_th: 4,
            max_th: 12,
            max_p: 0.2,
        };

        let r1 = Router::new(&mut sim);
        let r1_a = Router::add_port(&r1, &seg_a1, 20, ip(10, 0, 1, 254), tail(32));
        let r1_m1 = Router::add_port(&r1, &seg_m1, 21, ip(10, 0, 3, 1), red);
        let r1_m2 = Router::add_port(&r1, &seg_m2, 22, ip(10, 0, 4, 1), tail(16));
        {
            let mut r = r1.borrow_mut();
            for (net, port) in [
                (ip(10, 0, 1, 0), r1_a),
                (ip(10, 0, 3, 0), r1_m1),
                (ip(10, 0, 4, 0), r1_m2),
            ] {
                r.add_route(RouterRoute {
                    net,
                    mask,
                    port,
                    next_hop: None,
                    alt: None,
                });
            }
            r.add_route(RouterRoute {
                net: ip(10, 0, 2, 0),
                mask,
                port: r1_m1,
                next_hop: Some(ip(10, 0, 3, 2)),
                alt: Some((r1_m2, ip(10, 0, 4, 2))),
            });
        }

        let r2 = Router::new(&mut sim);
        let r2_b = Router::add_port(&r2, &seg_b, 30, ip(10, 0, 2, 254), tail(32));
        let r2_m1 = Router::add_port(&r2, &seg_m1, 31, ip(10, 0, 3, 2), tail(16));
        let r2_m2 = Router::add_port(&r2, &seg_m2, 32, ip(10, 0, 4, 2), tail(16));
        {
            let mut r = r2.borrow_mut();
            for (net, port) in [
                (ip(10, 0, 2, 0), r2_b),
                (ip(10, 0, 3, 0), r2_m1),
                (ip(10, 0, 4, 0), r2_m2),
            ] {
                r.add_route(RouterRoute {
                    net,
                    mask,
                    port,
                    next_hop: None,
                    alt: None,
                });
            }
            r.add_route(RouterRoute {
                net: ip(10, 0, 1, 0),
                mask,
                port: r2_m1,
                next_hop: Some(ip(10, 0, 3, 1)),
                alt: Some((r2_m2, ip(10, 0, 4, 1))),
            });
        }

        let costs = config.cost_model(platform);
        let mut hosts = Vec::new();
        for (i, (seg, net, gw)) in [
            (&seg_a0, ip(10, 0, 1, 0), ip(10, 0, 1, 254)),
            (&seg_b, ip(10, 0, 2, 0), ip(10, 0, 2, 254)),
        ]
        .into_iter()
        .enumerate()
        {
            let mut routes = RouteTable::directly_attached(net, mask);
            routes.add_default(gw);
            let host_ip = Ipv4Addr::new(10, 0, 1 + i as u8, 1);
            let host = build_host(
                &mut sim,
                seg,
                config,
                costs.clone(),
                host_ip,
                1 + i as u32,
                platform,
                routes,
            );
            hosts.push(host);
        }

        MultiHopBed {
            sim,
            segments: vec![seg_a0, seg_a1, seg_m1, seg_m2, seg_b],
            switch,
            routers: vec![r1, r2],
            hosts,
            config,
            platform,
        }
    }

    /// Attaches one shared fault plane to every host CPU, every
    /// segment, the switch, and both routers, returning its handle.
    /// Same contract as [`TestBed::attach_fault_plane`]: the empty
    /// plane is inert and consumes no randomness.
    pub fn attach_fault_plane(&mut self) -> psd_sim::FaultPlaneHandle {
        let plane = psd_sim::FaultPlane::shared();
        plane
            .borrow_mut()
            .set_rng(psd_sim::Rng::new(0x9E37_79B9_7F4A_7C15));
        for h in &self.hosts {
            h.cpu.borrow_mut().set_fault_plane(Some(plane.clone()));
        }
        for seg in &self.segments {
            seg.borrow_mut().set_fault_plane(Some(plane.clone()));
        }
        self.switch
            .borrow_mut()
            .set_fault_plane(Some(plane.clone()));
        for r in &self.routers {
            r.borrow_mut().set_fault_plane(Some(plane.clone()));
        }
        plane
    }

    /// Attaches a separate fault plane to one segment only (targeted
    /// partitions: down `segM1` without touching the rest).
    pub fn attach_segment_fault_plane(&mut self, seg: usize) -> psd_sim::FaultPlaneHandle {
        let plane = psd_sim::FaultPlane::shared();
        plane
            .borrow_mut()
            .set_rng(psd_sim::Rng::new(0x9E37_79B9_7F4A_7C15));
        self.segments[seg]
            .borrow_mut()
            .set_fault_plane(Some(plane.clone()));
        plane
    }

    /// Attaches a fresh packet-lifecycle tracer everywhere, returning
    /// its handle.
    pub fn attach_tracer(&mut self) -> psd_sim::TraceHandle {
        let tracer = psd_sim::Tracer::shared();
        for h in &self.hosts {
            h.cpu.borrow_mut().set_tracer(Some(tracer.clone()));
        }
        for seg in &self.segments {
            seg.borrow_mut().set_tracer(Some(tracer.clone()));
        }
        self.switch.borrow_mut().set_tracer(Some(tracer.clone()));
        for r in &self.routers {
            r.borrow_mut().set_tracer(Some(tracer.clone()));
        }
        tracer
    }

    /// Attaches a fresh operation census to every host CPU (one handle
    /// per host, in `hosts` order).
    pub fn attach_census(&mut self) -> Vec<psd_sim::CensusHandle> {
        self.hosts
            .iter()
            .map(|h| {
                let census = psd_sim::Census::shared();
                h.cpu.borrow_mut().set_census(Some(census.clone()));
                census
            })
            .collect()
    }

    /// Attaches a fresh charged-time profiler to every host CPU (one
    /// handle per host, in `hosts` order). Same contract as
    /// [`TestBed::attach_profilers`]: bit-identical timing, exact
    /// conservation per host CPU.
    pub fn attach_profilers(&mut self) -> Vec<psd_sim::ProfileHandle> {
        self.hosts
            .iter()
            .map(|h| {
                let prof = psd_sim::Profiler::shared();
                h.cpu.borrow_mut().set_profiler(Some(prof.clone()));
                prof
            })
            .collect()
    }

    /// Builds a gauge registry over the whole diamond — both hosts'
    /// kernel/protocol/pool gauges plus every switch and router egress
    /// queue depth (including R1's RED-managed primary WAN port) — and
    /// arms the engine's run-loop sampler at `period`. Same inertness
    /// contract as [`TestBed::attach_metrics`].
    pub fn attach_metrics(&mut self, period: SimTime) -> psd_sim::MetricsHandle {
        let metrics = psd_sim::Metrics::shared();
        {
            let mut m = metrics.borrow_mut();
            for (i, h) in self.hosts.iter().enumerate() {
                register_host_gauges(&mut m, i, h);
            }
            register_mbuf_gauges(&mut m);
            {
                let sw = self.switch.borrow();
                for p in 0..2 {
                    let depth = sw.port_depth_cell(p);
                    m.register(format!("switch.p{p}.depth"), move || depth.get() as u64);
                }
            }
            for (ri, r) in self.routers.iter().enumerate() {
                let r = r.borrow();
                for p in 0..3 {
                    let depth = r.port_depth_cell(p);
                    m.register(format!("r{}.p{p}.depth", ri + 1), move || {
                        depth.get() as u64
                    });
                }
            }
        }
        self.sim.set_metrics_sampler(metrics.clone(), period);
        metrics
    }

    /// Runs the simulation until idle.
    pub fn settle(&mut self) {
        self.sim.run_to_idle();
    }

    /// Runs the simulation for a bounded virtual duration.
    pub fn run_for(&mut self, d: SimTime) {
        let deadline = self.sim.now() + d;
        self.sim.run_until(deadline);
    }
}

/// Registers one host's standard gauges under an `h{i}.` prefix:
/// kernel interface counters, delivery-ring occupancy, live endpoints,
/// and the OS-side stack's session and aggregate TCP state. Library
/// configurations keep per-session TCP state in application library
/// stacks — register those separately on the returned handle if a
/// workload needs them.
fn register_host_gauges(m: &mut psd_sim::Metrics, i: usize, h: &Host) {
    let k = h.kernel.clone();
    m.register(format!("h{i}.rx_frames"), move || {
        k.borrow().stats().rx_frames
    });
    let ring = h.kernel.borrow().ring_occupancy_cell();
    m.register(format!("h{i}.ring"), move || ring.get());
    let k = h.kernel.clone();
    m.register(format!("h{i}.endpoints"), move || {
        k.borrow().endpoint_count() as u64
    });
    let st = h.os_stack();
    m.register(format!("h{i}.sessions"), move || {
        st.borrow().session_count() as u64
    });
    for (j, name) in ["tcp_conns", "tcp_cwnd", "tcp_ssthresh", "tcp_rto_ns"]
        .into_iter()
        .enumerate()
    {
        let st = h.os_stack();
        m.register(format!("h{i}.{name}"), move || {
            let g = st.borrow().tcp_gauges();
            [g.0, g.1, g.2, g.3][j]
        });
    }
}

/// Registers the (thread-local, bed-wide) mbuf pool hit/miss totals.
fn register_mbuf_gauges(m: &mut psd_sim::Metrics) {
    m.register("mbuf.hits", || psd_mbuf::pool_stats().hits());
    m.register("mbuf.misses", || psd_mbuf::pool_stats().misses());
}

#[allow(clippy::too_many_arguments)]
fn build_host(
    sim: &mut Sim,
    ether: &EthernetHandle,
    config: SystemConfig,
    costs: CostModel,
    ip: Ipv4Addr,
    station: u32,
    platform: Platform,
    routes: RouteTable,
) -> Host {
    let cpu = Rc::new(RefCell::new(Cpu::new()));
    let kernel = Kernel::new(costs.clone(), cpu.clone(), EtherAddr::local(station));
    Kernel::connect(&kernel, ether);
    let rcvbuf = config.best_recv_buffer(platform);

    if config.is_inkernel() {
        // Monolithic: one kernel-placement stack, input at interrupt
        // level, pcb-lookup demultiplexing.
        let stack = NetStack::new(Placement::Kernel, costs, cpu.clone(), ip);
        stack
            .borrow_mut()
            .set_ifnet(KernelNetIf::new(kernel.clone()));
        stack.borrow_mut().routes = routes;
        stack.borrow_mut().set_tcp_buffers(16 * 1024, rcvbuf);
        if config == SystemConfig::Bsd386InKernel {
            // The large-packet bug (Table 2's NA cells): 386BSD could
            // not send full-size TCP segments.
            stack.borrow_mut().set_mss_cap(512);
        }
        let sink_stack = stack.clone();
        let sink: psd_kernel::InKernelSink = Rc::new(RefCell::new(
            move |sim: &mut Sim, charge: &mut psd_sim::Charge, frame: Vec<u8>| {
                sink_stack.borrow_mut().input_frame(sim, charge, &frame);
            },
        ));
        let ep = kernel.borrow_mut().create_inkernel_endpoint(sink);
        kernel.borrow_mut().set_default_endpoint(ep);
        let _ = sim;
        Host {
            kernel,
            cpu,
            server: None,
            kern_stack: Some(stack),
            kern_ports: Some(Rc::new(RefCell::new(PortNamespace::new()))),
            ip,
            config,
        }
    } else {
        let server = OsServer::new(&kernel, ip);
        {
            let stack = server.borrow().stack();
            let mut st = stack.borrow_mut();
            st.routes = routes;
            st.set_tcp_buffers(16 * 1024, rcvbuf);
        }
        Host {
            kernel,
            cpu,
            server: Some(server),
            kern_stack: None,
            kern_ports: None,
            ip,
            config,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psd_core::AppLib;
    use psd_server::Proto;

    #[test]
    fn config_tables_are_consistent() {
        for platform in [Platform::DecStation5000_200, Platform::Gateway486] {
            let configs = SystemConfig::for_platform(platform);
            assert_eq!(configs.len(), 6);
            for c in configs {
                // Labels are unique and non-empty.
                assert!(!c.label().is_empty());
                // Library configs have an rx mode; others do not.
                assert_eq!(c.rx_mode().is_some(), c.is_library());
                // Receive buffers are sane.
                let buf = c.best_recv_buffer(platform);
                assert!((8 * 1024..=120 * 1024).contains(&buf));
            }
        }
    }

    #[test]
    fn ultrix_and_386bsd_get_variant_cost_models() {
        let base = SystemConfig::Mach25InKernel.cost_model(Platform::DecStation5000_200);
        let ultrix = SystemConfig::Ultrix42InKernel.cost_model(Platform::DecStation5000_200);
        assert!(ultrix.trap > base.trap);
        let bsd = SystemConfig::Bsd386InKernel.cost_model(Platform::Gateway486);
        assert!(bsd.intr_penalty > 0);
    }

    #[test]
    fn hosts_are_built_per_architecture() {
        for platform in [Platform::DecStation5000_200, Platform::Gateway486] {
            for config in SystemConfig::for_platform(platform) {
                let bed = TestBed::new(config, platform, 1);
                for host in &bed.hosts {
                    if config.is_inkernel() {
                        assert!(host.server.is_none());
                        assert!(host.kern_stack.is_some());
                        assert_eq!(
                            host.kern_stack.as_ref().unwrap().borrow().placement(),
                            psd_netstack::Placement::Kernel
                        );
                    } else {
                        assert!(host.server.is_some());
                        assert!(host.kern_stack.is_none());
                        assert_eq!(
                            host.os_stack().borrow().placement(),
                            psd_netstack::Placement::Server
                        );
                    }
                    // The OS-side stack got the configured receive buffer.
                    let (_, rcv) = host.os_stack().borrow().tcp_buffers();
                    assert_eq!(rcv, config.best_recv_buffer(platform));
                }
            }
        }
    }

    #[test]
    fn spawned_apps_match_host_architecture() {
        use psd_core::ApiMode;
        let bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 1);
        let app = bed.hosts[0].spawn_app();
        assert!(matches!(app.borrow().mode(), ApiMode::Library { .. }));
        assert!(app.borrow().stack().is_some());

        let bed = TestBed::new(SystemConfig::UxServer, Platform::DecStation5000_200, 1);
        let app = bed.hosts[0].spawn_app();
        assert!(matches!(app.borrow().mode(), ApiMode::ServerBased));
        assert!(app.borrow().stack().is_none());

        let bed = TestBed::new(
            SystemConfig::Mach25InKernel,
            Platform::DecStation5000_200,
            1,
        );
        let app = bed.hosts[0].spawn_app();
        assert!(matches!(app.borrow().mode(), ApiMode::InKernel));
    }

    #[test]
    fn two_apps_on_one_inkernel_host_share_the_port_space() {
        let mut bed = TestBed::new(
            SystemConfig::Mach25InKernel,
            Platform::DecStation5000_200,
            1,
        );
        let a = bed.hosts[0].spawn_app();
        let b = bed.hosts[0].spawn_app();
        let fa = AppLib::socket(&a, &mut bed.sim, Proto::Udp);
        let fb = AppLib::socket(&b, &mut bed.sim, Proto::Udp);
        AppLib::bind(&a, &mut bed.sim, fa, 7000).unwrap();
        assert_eq!(
            AppLib::bind(&b, &mut bed.sim, fb, 7000).unwrap_err(),
            psd_netstack::SocketError::AddrInUse
        );
    }

    #[test]
    fn bsd386_mss_cap_is_applied() {
        let bed = TestBed::new(SystemConfig::Bsd386InKernel, Platform::Gateway486, 1);
        // The cap is observable through new connections' segment sizes;
        // here we just confirm the knob is set on the stack by probing a
        // fresh connect's SYN MSS via the stack API surface: indirect,
        // so assert the configuration path instead.
        assert!(bed.hosts[0].kern_stack.is_some());
    }

    #[test]
    fn multihop_bed_routes_tcp_end_to_end() {
        // 16 KB through switch + two routers + WAN-delay middle links,
        // twice with the same seed: the transfer completes, the routers
        // actually forwarded it, and the virtual clock agrees exactly.
        let t1 = multihop::transfer(SystemConfig::LibraryShm, Platform::DecStation5000_200, 5);
        let t2 = multihop::transfer(SystemConfig::LibraryShm, Platform::DecStation5000_200, 5);
        assert_eq!(t1, t2);
    }

    #[test]
    fn multihop_bed_works_for_inkernel_and_server_configs() {
        for config in [SystemConfig::Mach25InKernel, SystemConfig::UxServer] {
            multihop::transfer(config, Platform::DecStation5000_200, 3);
        }
    }

    /// A small TCP transfer across the [`MultiHopBed`] diamond.
    mod multihop {
        use super::super::*;
        use psd_core::{AppLib, Fd, FdEventFn};
        use psd_netstack::{InetAddr, SockEvent};
        use psd_server::Proto;
        use psd_sim::SimTime;
        use std::cell::RefCell;
        use std::rc::Rc;

        const BYTES: usize = 16 * 1024;

        pub fn transfer(config: SystemConfig, platform: Platform, seed: u64) -> u64 {
            let mut bed = MultiHopBed::new(config, platform, seed);
            let rx_app = bed.hosts[1].spawn_app();
            let got = Rc::new(RefCell::new(0usize));
            let lfd = AppLib::socket(&rx_app, &mut bed.sim, Proto::Tcp);
            AppLib::bind(&rx_app, &mut bed.sim, lfd, 5001).unwrap();
            AppLib::listen(&rx_app, &mut bed.sim, lfd, 1).unwrap();
            {
                let app = rx_app.clone();
                let conn_app = rx_app.clone();
                let got2 = got.clone();
                let conn: FdEventFn = Rc::new(RefCell::new(
                    move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                        if ev == SockEvent::Readable {
                            let mut buf = [0u8; 8192];
                            while let Ok(n) = AppLib::recv(&conn_app, sim, fd, &mut buf) {
                                if n == 0 {
                                    break;
                                }
                                *got2.borrow_mut() += n;
                            }
                        }
                    },
                ));
                let listen: FdEventFn = Rc::new(RefCell::new(
                    move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                        if ev == SockEvent::Readable {
                            while let Ok(c) = AppLib::accept(&app, sim, fd) {
                                app.borrow_mut().set_event_handler(c, conn.clone());
                            }
                        }
                    },
                ));
                rx_app.borrow_mut().set_event_handler(lfd, listen);
            }
            let tx_app = bed.hosts[0].spawn_app();
            let cfd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Tcp);
            let sent = Rc::new(RefCell::new(0usize));
            {
                let app = tx_app.clone();
                let sent = sent.clone();
                let h: FdEventFn = Rc::new(RefCell::new(
                    move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                        if matches!(ev, SockEvent::Connected | SockEvent::Writable) {
                            while *sent.borrow() < BYTES {
                                match AppLib::send(&app, sim, fd, &[7u8; 4096]) {
                                    Ok(n) => *sent.borrow_mut() += n,
                                    Err(_) => break,
                                }
                            }
                        }
                    },
                ));
                tx_app.borrow_mut().set_event_handler(cfd, h);
            }
            let dst = InetAddr::new(bed.hosts[1].ip, 5001);
            AppLib::connect(&tx_app, &mut bed.sim, cfd, dst).unwrap();
            while *got.borrow() < BYTES {
                let t = bed.sim.now() + SimTime::from_millis(100);
                bed.sim.run_until(t);
                assert!(bed.sim.now() < SimTime::from_secs(300), "stalled");
            }
            for r in &bed.routers {
                assert!(r.borrow().stats().forwarded > 0, "router on the path");
            }
            assert!(
                bed.switch.borrow().stats().forwarded > 0,
                "switch on the path"
            );
            bed.sim.now().as_nanos()
        }
    }

    #[test]
    fn deterministic_given_seed() {
        use psd_bench_free::ttcp_free;
        // Two runs with the same seed must agree bit-for-bit on the
        // virtual clock. (Uses a local re-implementation to avoid a
        // dependency cycle with psd-bench.)
        let t1 = ttcp_free(SystemConfig::LibraryShm, Platform::DecStation5000_200, 9);
        let t2 = ttcp_free(SystemConfig::LibraryShm, Platform::DecStation5000_200, 9);
        assert_eq!(t1, t2);
    }

    /// A tiny self-contained transfer used by the determinism test.
    mod psd_bench_free {
        use super::super::*;
        use psd_core::{AppLib, Fd, FdEventFn};
        use psd_netstack::{InetAddr, SockEvent};
        use psd_server::Proto;
        use psd_sim::SimTime;
        use std::cell::RefCell;
        use std::rc::Rc;

        pub fn ttcp_free(config: SystemConfig, platform: Platform, seed: u64) -> u64 {
            let mut bed = TestBed::new(config, platform, seed);
            let rx_app = bed.hosts[1].spawn_app();
            let got = Rc::new(RefCell::new(0usize));
            let lfd = AppLib::socket(&rx_app, &mut bed.sim, Proto::Tcp);
            AppLib::bind(&rx_app, &mut bed.sim, lfd, 5001).unwrap();
            AppLib::listen(&rx_app, &mut bed.sim, lfd, 1).unwrap();
            {
                let app = rx_app.clone();
                let got = got.clone();
                let conn_app = rx_app.clone();
                let got2 = got.clone();
                let conn: FdEventFn = Rc::new(RefCell::new(
                    move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                        if ev == SockEvent::Readable {
                            let mut buf = [0u8; 8192];
                            while let Ok(n) = AppLib::recv(&conn_app, sim, fd, &mut buf) {
                                if n == 0 {
                                    break;
                                }
                                *got2.borrow_mut() += n;
                            }
                        }
                    },
                ));
                let _ = got;
                let listen: FdEventFn = Rc::new(RefCell::new(
                    move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                        if ev == SockEvent::Readable {
                            while let Ok(c) = AppLib::accept(&app, sim, fd) {
                                app.borrow_mut().set_event_handler(c, conn.clone());
                            }
                        }
                    },
                ));
                rx_app.borrow_mut().set_event_handler(lfd, listen);
            }
            let tx_app = bed.hosts[0].spawn_app();
            let cfd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Tcp);
            let sent = Rc::new(RefCell::new(0usize));
            {
                let app = tx_app.clone();
                let sent = sent.clone();
                let h: FdEventFn = Rc::new(RefCell::new(
                    move |sim: &mut psd_sim::Sim, fd: Fd, ev: SockEvent| {
                        if matches!(ev, SockEvent::Connected | SockEvent::Writable) {
                            while *sent.borrow() < 64 * 1024 {
                                match AppLib::send(&app, sim, fd, &[5u8; 4096]) {
                                    Ok(n) => *sent.borrow_mut() += n,
                                    Err(_) => break,
                                }
                            }
                        }
                    },
                ));
                tx_app.borrow_mut().set_event_handler(cfd, h);
            }
            let dst = InetAddr::new(bed.hosts[1].ip, 5001);
            AppLib::connect(&tx_app, &mut bed.sim, cfd, dst).unwrap();
            while *got.borrow() < 64 * 1024 {
                let t = bed.sim.now() + SimTime::from_millis(100);
                bed.sim.run_until(t);
                assert!(bed.sim.now() < SimTime::from_secs(120), "stalled");
            }
            bed.sim.now().as_nanos()
        }
    }
}
