//! Network-chaos suite: deterministic link-fault schedules over the
//! multi-hop diamond topology. Every run arms all six link-fault sites
//! (wire loss / duplication / reordering, link-down flaps, forced
//! queue-full drops, asymmetric route flips), drives a paced TCP echo
//! stream through two routers and a learning switch, opens a timed
//! partition window on the primary middle link and heals it, and then
//! asserts the recovery invariants:
//!
//! * the connection survives the partition + heal — the transfer
//!   completes, and the echoed stream is a byte-exact prefix (in fact
//!   the whole) of what was sent (exactly-once, in-order);
//! * every packet the tracer saw reached exactly one terminal state —
//!   no drop path is invisible to the taxonomy;
//! * after the descriptors close, no session or port leaks on either
//!   host;
//! * the same seed reproduces the identical run, byte for byte, across
//!   the full digest (counters, router/switch stats, drop taxonomies,
//!   fault-plane logs, operation censuses).
//!
//! A separate blackout test severs both middle links permanently and
//! asserts the client surfaces `Error(TimedOut)` instead of hanging.

use psd::core::{AppLib, Fd, FdEventFn};
use psd::netstack::{InetAddr, SockEvent, SocketError};
use psd::server::Proto;
use psd::sim::{FaultSite, Platform, Rng, SimTime};
use psd::systems::{MultiHopBed, SystemConfig, SEG_MID_ALTERNATE, SEG_MID_PRIMARY};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];
const PATTERN_LEN: usize = 20 * 1024;
const CHUNK: usize = 256;

/// TCP echo service on the far host (no supervisor: the link-fault
/// sites never crash a server, only the wire misbehaves).
fn tcp_echo(bed: &mut MultiHopBed, port: u16) -> Rc<RefCell<usize>> {
    let app = bed.hosts[1].spawn_app();
    let echoed = Rc::new(RefCell::new(0usize));
    let lfd = AppLib::socket(&app, &mut bed.sim, Proto::Tcp);
    AppLib::bind(&app, &mut bed.sim, lfd, port).expect("echo bind");
    AppLib::listen(&app, &mut bed.sim, lfd, 8).expect("echo listen");
    let app2 = app.clone();
    let echoed2 = echoed.clone();
    let conn_handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| match ev {
            SockEvent::Readable | SockEvent::PeerClosed => loop {
                let mut buf = [0u8; 4096];
                match AppLib::recv(&app2, sim, fd, &mut buf) {
                    Ok(0) => {
                        AppLib::close(&app2, sim, fd);
                        break;
                    }
                    Ok(n) => {
                        *echoed2.borrow_mut() += n;
                        let mut off = 0;
                        while off < n {
                            match AppLib::send(&app2, sim, fd, &buf[off..n]) {
                                Ok(m) if m > 0 => off += m,
                                _ => return, // backpressure: retried via Writable
                            }
                        }
                    }
                    Err(SocketError::WouldBlock) => break,
                    Err(_) => {
                        AppLib::close(&app2, sim, fd);
                        break;
                    }
                }
            },
            SockEvent::Error(_) => AppLib::close(&app2, sim, fd),
            _ => {}
        },
    ));
    let app3 = app.clone();
    let listen_handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                while let Ok(conn) = AppLib::accept(&app3, sim, fd) {
                    app3.borrow_mut()
                        .set_event_handler(conn, conn_handler.clone());
                }
            }
        },
    ));
    app.borrow_mut().set_event_handler(lfd, listen_handler);
    echoed
}

struct NetClient {
    fd: Fd,
    replies: Rc<RefCell<Vec<u8>>>,
    connected: Rc<RefCell<bool>>,
    errors: Rc<RefCell<Vec<SocketError>>>,
}

/// TCP client on the near host; records replies and surfaced errors.
fn tcp_client(bed: &mut MultiHopBed, app: &psd::core::AppHandle, dst: InetAddr) -> NetClient {
    let fd = AppLib::socket(app, &mut bed.sim, Proto::Tcp);
    let replies = Rc::new(RefCell::new(Vec::new()));
    let connected = Rc::new(RefCell::new(false));
    let errors = Rc::new(RefCell::new(Vec::new()));
    let (app2, r2, c2, e2) = (
        app.clone(),
        replies.clone(),
        connected.clone(),
        errors.clone(),
    );
    let handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| match ev {
            SockEvent::Connected => *c2.borrow_mut() = true,
            SockEvent::Readable => loop {
                let mut buf = [0u8; 4096];
                match AppLib::recv(&app2, sim, fd, &mut buf) {
                    Ok(0) => break,
                    Ok(n) => r2.borrow_mut().extend_from_slice(&buf[..n]),
                    Err(_) => break,
                }
            },
            SockEvent::Error(e) => e2.borrow_mut().push(e),
            _ => {}
        },
    ));
    app.borrow_mut().set_event_handler(fd, handler);
    AppLib::connect(app, &mut bed.sim, fd, dst).expect("connect issued");
    NetClient {
        fd,
        replies,
        connected,
        errors,
    }
}

/// Flips the partition plane's scripted-probability link-down state.
fn set_link_down(plane: &psd::sim::FaultPlaneHandle, down: bool) {
    plane
        .borrow_mut()
        .arm(FaultSite::LinkDown, if down { 1.0 } else { 0.0 });
}

/// One full network-chaos run: returns the deterministic digest.
fn run_chaos_net(config: SystemConfig, seed: u64) -> String {
    let mut bed = MultiHopBed::new(config, Platform::DecStation5000_200, seed);
    let censuses = bed.attach_census();
    let tracer = bed.attach_tracer();
    let plane = bed.attach_fault_plane();
    {
        let mut p = plane.borrow_mut();
        p.set_rng(Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1));
        p.arm(FaultSite::WireLoss, 0.004);
        p.arm(FaultSite::WireDuplicate, 0.002);
        p.arm(FaultSite::WireReorder, 0.002);
        p.arm(FaultSite::LinkQueueFull, 0.004);
        p.arm(FaultSite::RouteFlip, 0.08);
    }
    // The partition plane owns only the primary middle link; its
    // link-down state is toggled below on a virtual-time window, so the
    // schedule (arm at the same slice boundaries every run) is as
    // deterministic as a scripted one.
    let partition = bed.attach_segment_fault_plane(SEG_MID_PRIMARY);
    partition
        .borrow_mut()
        .set_rng(Rng::new(seed.wrapping_mul(0xD1B5_4A32_D192_ED03) | 1));

    let echoed = tcp_echo(&mut bed, 80);
    let client_app = bed.hosts[0].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = tcp_client(&mut bed, &client_app, dst);

    // Connect through the (already lossy) diamond before partitioning.
    let deadline = bed.sim.now() + SimTime::from_secs(60);
    while !*client.connected.borrow() && bed.sim.now() < deadline {
        bed.run_for(SimTime::from_millis(10));
    }
    assert!(
        *client.connected.borrow(),
        "connect never completed (config {} seed {})",
        config.label(),
        seed
    );

    // Paced transfer with a partition + heal window in the middle: one
    // chunk per 100 ms slice keeps traffic flowing on the middle links
    // while the window is open, so the flap provably bites.
    let pattern: Vec<u8> = (0..PATTERN_LEN as u32).map(|i| (i % 239) as u8).collect();
    let t0 = bed.sim.now();
    let window = (t0 + SimTime::from_secs(2), t0 + SimTime::from_secs(8));
    let hard_deadline = t0 + SimTime::from_secs(300);
    let mut sent = 0usize;
    let mut down = false;
    loop {
        let now = bed.sim.now();
        let want_down = now >= window.0 && now < window.1;
        if want_down != down {
            set_link_down(&partition, want_down);
            down = want_down;
        }
        if sent < pattern.len() {
            let end = (sent + CHUNK).min(pattern.len());
            if let Ok(n) = AppLib::send(&client_app, &mut bed.sim, client.fd, &pattern[sent..end]) {
                sent += n;
            }
        }
        if client.replies.borrow().len() >= pattern.len() {
            break;
        }
        assert!(
            bed.sim.now() < hard_deadline,
            "transfer hung across partition + heal: sent={} echoed={} replies={} (config {} seed {})",
            sent,
            *echoed.borrow(),
            client.replies.borrow().len(),
            config.label(),
            seed
        );
        bed.run_for(SimTime::from_millis(100));
    }
    assert!(!down, "loop ended with the link still partitioned");
    assert!(
        client.errors.borrow().is_empty(),
        "connection errored under a recoverable schedule: {:?} (config {} seed {})",
        client.errors.borrow(),
        config.label(),
        seed
    );

    // Exactly-once, in-order: the echo is byte-identical to the input.
    {
        let replies = client.replies.borrow();
        assert_eq!(replies.len(), pattern.len());
        assert_eq!(
            replies.as_slice(),
            pattern.as_slice(),
            "TCP stream corrupted through the diamond (config {} seed {})",
            config.label(),
            seed
        );
    }

    // The partition window must actually have severed frames — a chaos
    // run where the flap never bit is vacuous.
    assert!(
        partition.borrow().injected(FaultSite::LinkDown) > 0,
        "the partition window never dropped a frame (config {} seed {})",
        config.label(),
        seed
    );

    // Teardown: close and drain, then check for leaks on both hosts.
    AppLib::close(&client_app, &mut bed.sim, client.fd);
    for _ in 0..1200 {
        bed.run_for(SimTime::from_millis(100));
        let clear = bed.hosts[0]
            .server
            .as_ref()
            .is_none_or(|os| os.borrow().session_count() == 0);
        if clear {
            break;
        }
    }
    if let Some(os0) = &bed.hosts[0].server {
        assert_eq!(
            os0.borrow().session_count(),
            0,
            "client host leaked sessions (config {} seed {})",
            config.label(),
            seed
        );
        assert_eq!(
            os0.borrow().ports().len(),
            0,
            "client host leaked ports (config {} seed {})",
            config.label(),
            seed
        );
    }
    if let Some(os1) = &bed.hosts[1].server {
        assert!(
            os1.borrow().session_count() <= 1,
            "server host leaked sessions: {} (config {} seed {})",
            os1.borrow().session_count(),
            config.label(),
            seed
        );
        assert!(os1.borrow().ports().len() <= 1);
    }

    // Every packet the tracer saw reached exactly one terminal state:
    // no drop point anywhere in the topology is invisible.
    let violations = tracer.borrow().check_invariants();
    assert!(
        violations.is_empty(),
        "packet-lifecycle violations (config {} seed {}): {:?}",
        config.label(),
        seed,
        violations
    );

    // --- digest ---
    let mut d = String::new();
    let _ = writeln!(d, "config={} seed={}", config.label(), seed);
    let _ = writeln!(
        d,
        "tcp_sent={} tcp_replies={} tcp_echoed={} clock_ns={}",
        sent,
        client.replies.borrow().len(),
        *echoed.borrow(),
        bed.sim.now().as_nanos(),
    );
    for (i, host) in bed.hosts.iter().enumerate() {
        if let Some(os) = &host.server {
            let s = os.borrow();
            let _ = writeln!(
                d,
                "host{} sessions={} ports={} stats={:?}",
                i,
                s.session_count(),
                s.ports().len(),
                s.stats
            );
        }
    }
    const SEG_NAMES: [&str; 5] = ["segA0", "segA1", "segM1", "segM2", "segB"];
    for (name, seg) in SEG_NAMES.iter().zip(&bed.segments) {
        let s = seg.borrow();
        let _ = writeln!(
            d,
            "{name}={:?} drops={:?}",
            s.stats(),
            s.drops().nonzero().collect::<Vec<_>>()
        );
    }
    {
        let s = bed.switch.borrow();
        let _ = writeln!(
            d,
            "switch={:?} drops={:?}",
            s.stats(),
            s.drops().nonzero().collect::<Vec<_>>()
        );
    }
    for (i, r) in bed.routers.iter().enumerate() {
        let r = r.borrow();
        let _ = writeln!(
            d,
            "router{}={:?} drops={:?}",
            i + 1,
            r.stats(),
            r.drops().nonzero().collect::<Vec<_>>()
        );
    }
    let _ = writeln!(
        d,
        "injected={}",
        plane.borrow().total_injected() + partition.borrow().total_injected()
    );
    let _ = writeln!(d, "plane:\n{}", plane.borrow().snapshot());
    let _ = writeln!(d, "partition:\n{}", partition.borrow().snapshot());
    for (i, c) in censuses.iter().enumerate() {
        let _ = writeln!(d, "census host{}:\n{}", i, c.borrow().snapshot());
    }
    d
}

/// Same seed, same fault schedule, same digest — byte for byte.
fn chaos_net_matrix(config: SystemConfig) {
    let mut injected_total = 0u64;
    for seed in SEEDS {
        let d1 = run_chaos_net(config, seed);
        let d2 = run_chaos_net(config, seed);
        assert_eq!(
            d1,
            d2,
            "network-chaos run is not reproducible for {} seed {}",
            config.label(),
            seed
        );
        let line = d1
            .lines()
            .find(|l| l.starts_with("injected="))
            .expect("digest has an injection count");
        injected_total += line["injected=".len()..].parse::<u64>().unwrap();
    }
    assert!(
        injected_total > 0,
        "the network-chaos matrix for {} never injected a fault — the suite is vacuous",
        config.label()
    );
}

#[test]
fn chaos_net_server_based_placement() {
    chaos_net_matrix(SystemConfig::UxServer);
}

#[test]
fn chaos_net_library_ipc_placement() {
    chaos_net_matrix(SystemConfig::LibraryIpc);
}

#[test]
fn chaos_net_library_shm_placement() {
    chaos_net_matrix(SystemConfig::LibraryShm);
}

/// Sustained blackout: both middle links go down permanently right
/// after the connection establishes. The client must not hang — the
/// retransmission ladder runs its capped exponential backoff and then
/// surfaces `Error(TimedOut)` — and the dead connection's resources
/// drain once the application closes the descriptor.
#[test]
fn blackout_surfaces_timeout_instead_of_hanging() {
    let mut bed = MultiHopBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 42);
    tcp_echo(&mut bed, 80);
    let client_app = bed.hosts[0].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = tcp_client(&mut bed, &client_app, dst);
    let deadline = bed.sim.now() + SimTime::from_secs(30);
    while !*client.connected.borrow() && bed.sim.now() < deadline {
        bed.run_for(SimTime::from_millis(10));
    }
    assert!(*client.connected.borrow(), "clean connect failed");

    // Sever both middle links: no alternate path, a true partition.
    let p1 = bed.attach_segment_fault_plane(SEG_MID_PRIMARY);
    let p2 = bed.attach_segment_fault_plane(SEG_MID_ALTERNATE);
    set_link_down(&p1, true);
    set_link_down(&p2, true);

    let _ = AppLib::send(&client_app, &mut bed.sim, client.fd, &[9u8; 2048]);
    // RTO_MIN .. RTO_MAX doubling over MAX_RXT retransmissions is a few
    // virtual minutes; 600 s of virtual time is a generous bound.
    let deadline = bed.sim.now() + SimTime::from_secs(600);
    while client.errors.borrow().is_empty() && bed.sim.now() < deadline {
        bed.run_for(SimTime::from_secs(1));
    }
    assert_eq!(
        client.errors.borrow().first(),
        Some(&SocketError::TimedOut),
        "blackout must surface a timeout, not hang: {:?}",
        client.errors.borrow()
    );
    assert!(
        p1.borrow().injected(FaultSite::LinkDown) > 0,
        "the blackout never dropped a frame"
    );

    // The dead connection must not pin resources once closed.
    AppLib::close(&client_app, &mut bed.sim, client.fd);
    for _ in 0..600 {
        bed.run_for(SimTime::from_millis(100));
        let clear = bed.hosts[0]
            .server
            .as_ref()
            .is_none_or(|os| os.borrow().session_count() == 0);
        if clear {
            break;
        }
    }
    if let Some(os0) = &bed.hosts[0].server {
        assert_eq!(os0.borrow().session_count(), 0, "blackout leaked sessions");
        assert_eq!(os0.borrow().ports().len(), 0, "blackout leaked ports");
    }
}
