//! Property-based tests over the substrates: codec roundtrips, checksum
//! laws, mbuf-chain invariants, filter-VM memory safety, demux-strategy
//! equivalence, IP reassembly, and TCP delivery under random faults.

use proptest::prelude::*;
use psd::filter::{Binop, DemuxStrategy, DemuxTable, EndpointSpec, Insn, Program};
use psd::mbuf::MbufChain;
use psd::wire::{
    internet_checksum, ArpPacket, Checksum, EtherAddr, IcmpMessage, IpProto, Ipv4Header, TcpFlags,
    TcpHeader, UdpHeader,
};
use std::net::Ipv4Addr;

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn checksum_is_segmentation_invariant(data in proptest::collection::vec(any::<u8>(), 0..512),
                                          cuts in proptest::collection::vec(any::<usize>(), 0..6)) {
        let whole = internet_checksum(&data);
        let mut c = Checksum::new();
        let mut points: Vec<usize> = cuts.iter().map(|x| x % (data.len() + 1)).collect();
        points.sort_unstable();
        let mut prev = 0;
        for p in points {
            c.add_bytes(&data[prev..p]);
            prev = p;
        }
        c.add_bytes(&data[prev..]);
        prop_assert_eq!(c.finish(), whole);
    }

    #[test]
    fn checksum_verifies_own_output(data in proptest::collection::vec(any::<u8>(), 2..256)) {
        // Storing the complement at an even offset makes the total sum
        // verify to zero — the law every protocol header relies on.
        let mut buf = data.clone();
        if buf.len() % 2 == 1 {
            buf.push(0);
        }
        let ck = internet_checksum(&buf);
        buf.extend_from_slice(&ck.to_be_bytes());
        prop_assert_eq!(internet_checksum(&buf), 0);
    }

    #[test]
    fn ipv4_header_roundtrips(src in arb_ip(), dst in arb_ip(), proto in any::<u8>(),
                              len in 0usize..1480, ident in any::<u16>(),
                              df in any::<bool>(), mf in any::<bool>(), off in 0u16..1600) {
        let mut h = Ipv4Header::new(src, dst, IpProto::from_u8(proto), len);
        h.ident = ident;
        h.dont_fragment = df;
        h.more_fragments = mf;
        h.frag_offset = off & !7;
        let mut bytes = h.encode().to_vec();
        bytes.resize(20 + len, 0);
        let parsed = Ipv4Header::parse(&bytes).unwrap();
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn tcp_header_roundtrips(sp in any::<u16>(), dp in any::<u16>(), seq in any::<u32>(),
                             ack in any::<u32>(), flags in 0u8..64, wnd in any::<u16>(),
                             urg in any::<u16>(), mss in proptest::option::of(any::<u16>())) {
        let h = TcpHeader {
            src_port: sp, dst_port: dp, seq, ack,
            flags: TcpFlags(flags), window: wnd, urgent: urg, mss,
        };
        let bytes = h.encode();
        let (parsed, len) = TcpHeader::parse(&bytes).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(len, h.header_len());
    }

    #[test]
    fn udp_header_roundtrips(sp in any::<u16>(), dp in any::<u16>(), len in 0usize..2000) {
        let h = UdpHeader::new(sp, dp, len);
        let parsed = UdpHeader::parse(&h.encode()).unwrap();
        prop_assert_eq!(parsed, h);
    }

    #[test]
    fn arp_roundtrips(smac in any::<[u8; 6]>(), sip in arb_ip(), tip in arb_ip()) {
        let p = ArpPacket::request(EtherAddr(smac), sip, tip);
        prop_assert_eq!(ArpPacket::parse(&p.encode()).unwrap(), p);
        let r = p.reply_to(EtherAddr::local(9));
        prop_assert_eq!(ArpPacket::parse(&r.encode()).unwrap(), r);
    }

    #[test]
    fn icmp_roundtrips(ident in any::<u16>(), seq in any::<u16>(),
                       payload in proptest::collection::vec(any::<u8>(), 0..128)) {
        let m = IcmpMessage::echo_request(ident, seq, payload);
        prop_assert_eq!(IcmpMessage::parse(&m.encode()).unwrap(), m);
    }

    #[test]
    fn header_parsers_never_panic_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Ipv4Header::parse(&bytes);
        let _ = TcpHeader::parse(&bytes);
        let _ = UdpHeader::parse(&bytes);
        let _ = ArpPacket::parse(&bytes);
        let _ = IcmpMessage::parse(&bytes);
        let _ = psd::wire::EthernetHeader::parse(&bytes);
    }

    #[test]
    fn filter_vm_is_memory_safe(
        insns in proptest::collection::vec(
            prop_oneof![
                any::<u16>().prop_map(Insn::PushLit),
                (0u16..200).prop_map(Insn::PushWord),
                Just(Insn::Op(Binop::Eq)),
                Just(Insn::Op(Binop::And)),
                Just(Insn::Op(Binop::Add)),
                Just(Insn::CombineOr(Binop::Eq)),
                Just(Insn::CombineAnd(Binop::Le)),
                Just(Insn::Ret),
            ],
            0..64,
        ),
        packet in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        // Arbitrary programs on arbitrary packets: must terminate, never
        // panic, never read out of bounds (checked by construction).
        let out = Program::new(insns).run(&packet);
        prop_assert!(out.steps <= psd::filter::MAX_STEPS + 1);
    }

    #[test]
    fn demux_strategies_agree(
        specs in proptest::collection::vec(
            (any::<bool>(), 1u16..5, 1000u16..1010, proptest::option::of((1u16..5, 2000u16..2010))),
            1..10,
        ),
        pkts in proptest::collection::vec(
            (1u16..5, 1000u16..1012, 1u16..6, 2000u16..2012, any::<bool>()),
            1..20,
        ),
    ) {
        let mut cspf: DemuxTable<usize> = DemuxTable::new(DemuxStrategy::Cspf);
        let mut mpf: DemuxTable<usize> = DemuxTable::new(DemuxStrategy::Mpf);
        for (i, (tcp, lip, lport, remote)) in specs.iter().enumerate() {
            let proto = if *tcp { IpProto::Tcp } else { IpProto::Udp };
            let local_ip = Ipv4Addr::new(10, 0, 0, *lip as u8);
            let spec = match remote {
                Some((rip, rport)) => EndpointSpec::connected(
                    proto, local_ip, *lport, Ipv4Addr::new(10, 0, 0, *rip as u8), *rport),
                None => EndpointSpec::unconnected(proto, local_ip, *lport),
            };
            // Skip duplicate specs: match order among exact duplicates
            // is an implementation detail.
            if cspf.classify(&frame_for(&spec)).owner.is_none() {
                cspf.install(spec, i);
                mpf.install(spec, i);
            }
        }
        for (dip, dport, sip, sport, tcp) in pkts {
            let frame = udp_or_tcp_frame(tcp,
                (Ipv4Addr::new(10, 0, 0, sip as u8), sport),
                (Ipv4Addr::new(10, 0, 0, dip as u8), dport));
            let a = cspf.classify(&frame);
            let b = mpf.classify(&frame);
            prop_assert_eq!(a.owner.map(|o| o.1), b.owner.map(|o| o.1));
        }
    }

    #[test]
    fn mbuf_chain_behaves_like_vec(ops in proptest::collection::vec(
        prop_oneof![
            proptest::collection::vec(any::<u8>(), 0..600).prop_map(MbufOp::Append),
            (any::<u16>()).prop_map(|n| MbufOp::TrimFront(n as usize)),
            (any::<u16>()).prop_map(|n| MbufOp::TrimBack(n as usize)),
            (any::<u16>(), any::<u16>()).prop_map(|(a, b)| MbufOp::CopyRange(a as usize, b as usize)),
            proptest::collection::vec(any::<u8>(), 1..40).prop_map(MbufOp::Prepend),
        ],
        0..24,
    )) {
        let mut chain = MbufChain::new();
        let mut model: Vec<u8> = Vec::new();
        for op in ops {
            match op {
                MbufOp::Append(data) => {
                    chain.append_slice(&data);
                    model.extend_from_slice(&data);
                }
                MbufOp::TrimFront(n) => {
                    let n = n % (model.len() + 1);
                    chain.trim_front(n);
                    model.drain(..n);
                }
                MbufOp::TrimBack(n) => {
                    let n = n % (model.len() + 1);
                    chain.trim_back(n);
                    model.truncate(model.len() - n);
                }
                MbufOp::CopyRange(off, len) => {
                    let off = off % (model.len() + 1);
                    let len = len % (model.len() - off + 1);
                    let (copy, _) = chain.copy_range(off, len);
                    let copied = copy.to_vec();
                    prop_assert_eq!(&copied[..], &model[off..off + len]);
                }
                MbufOp::Prepend(hdr) => {
                    chain.prepend(&hdr);
                    let mut m = hdr.clone();
                    m.extend_from_slice(&model);
                    model = m;
                }
            }
            prop_assert_eq!(chain.len(), model.len());
            let bytes = chain.to_vec();
            prop_assert_eq!(&bytes[..], model.as_slice());
        }
    }

    #[test]
    fn ip_reassembly_from_random_fragment_order(
        len in 1600usize..6000,
        mtu in prop_oneof![Just(576usize), Just(1006), Just(1500)],
        seed in any::<u64>(),
    ) {
        use psd::netstack::ip::{fragment, Reassembler};
        let payload: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        let mut hdr = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2), IpProto::Udp, len);
        hdr.ident = (seed & 0xFFFF) as u16;
        let mut frags = fragment(&hdr, &payload, mtu);
        // Deterministic shuffle from the seed.
        let mut rng = psd::sim::Rng::new(seed);
        for i in (1..frags.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            frags.swap(i, j);
        }
        let mut r = Reassembler::new();
        let mut done = None;
        for (fh, data) in &frags {
            if let Some(d) = r.insert(fh, data, psd::sim::SimTime::ZERO) {
                done = Some(d);
            }
        }
        let (_, got) = done.expect("all fragments inserted");
        prop_assert_eq!(got, payload);
    }
}

#[derive(Debug, Clone)]
enum MbufOp {
    Append(Vec<u8>),
    TrimFront(usize),
    TrimBack(usize),
    CopyRange(usize, usize),
    Prepend(Vec<u8>),
}

fn udp_or_tcp_frame(tcp: bool, src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16)) -> Vec<u8> {
    let proto = if tcp { IpProto::Tcp } else { IpProto::Udp };
    let tl = if tcp { 20 } else { 8 };
    let ip = Ipv4Header::new(src.0, dst.0, proto, tl);
    let eth = psd::wire::EthernetHeader {
        dst: EtherAddr::local(2),
        src: EtherAddr::local(1),
        ethertype: psd::wire::EtherType::Ipv4,
    };
    let mut f = eth.encode().to_vec();
    f.extend_from_slice(&ip.encode());
    if tcp {
        let h = TcpHeader {
            src_port: src.1,
            dst_port: dst.1,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            urgent: 0,
            mss: None,
        };
        f.extend_from_slice(&h.encode());
    } else {
        f.extend_from_slice(&UdpHeader::new(src.1, dst.1, 0).encode());
    }
    f
}

fn frame_for(spec: &EndpointSpec) -> Vec<u8> {
    let remote = spec.remote.unwrap_or((Ipv4Addr::new(10, 0, 0, 99), 4999));
    udp_or_tcp_frame(
        spec.proto == IpProto::Tcp,
        remote,
        (spec.local_ip, spec.local_port),
    )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        .. ProptestConfig::default()
    })]

    /// Whole-system property: a TCP transfer through the decomposed
    /// architecture delivers its bytes exactly once, in order, whatever
    /// the wire does (loss, duplication, reordering within bounds).
    #[test]
    fn tcp_delivery_is_exactly_once_in_order_under_faults(
        seed in any::<u64>(),
        loss in 0.0f64..0.12,
        dup in 0.0f64..0.08,
        reorder in 0.0f64..0.08,
    ) {
        use psd::core::{AppLib, Fd, FdEventFn};
        use psd::netstack::{InetAddr, SockEvent};
        use psd::server::Proto;
        use psd::sim::{Platform, SimTime};
        use psd::systems::{SystemConfig, TestBed};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, seed);
        bed.arm_wire_faults(seed, loss, dup, reorder);
        let rx_app = bed.hosts[1].spawn_app();
        let received: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let lfd = AppLib::socket(&rx_app, &mut bed.sim, Proto::Tcp);
        AppLib::bind(&rx_app, &mut bed.sim, lfd, 80).unwrap();
        AppLib::listen(&rx_app, &mut bed.sim, lfd, 2).unwrap();
        {
            let app = rx_app.clone();
            let rec = received.clone();
            let conn_app = rx_app.clone();
            let conn: FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                    if matches!(ev, SockEvent::Readable | SockEvent::PeerClosed) {
                        let mut buf = [0u8; 8192];
                        while let Ok(n) = AppLib::recv(&conn_app, sim, fd, &mut buf) {
                            if n == 0 {
                                break;
                            }
                            rec.borrow_mut().extend_from_slice(&buf[..n]);
                        }
                    }
                },
            ));
            let listen: FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                    if ev == SockEvent::Readable {
                        while let Ok(c) = AppLib::accept(&app, sim, fd) {
                            app.borrow_mut().set_event_handler(c, conn.clone());
                        }
                    }
                },
            ));
            rx_app.borrow_mut().set_event_handler(lfd, listen);
        }

        let tx_app = bed.hosts[0].spawn_app();
        let total = 24 * 1024usize;
        let pattern: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let sent = Rc::new(RefCell::new(0usize));
        let cfd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Tcp);
        {
            let app = tx_app.clone();
            let sent = sent.clone();
            let data = pattern.clone();
            let h: FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                    if matches!(ev, SockEvent::Connected | SockEvent::Writable) {
                        loop {
                            let off = *sent.borrow();
                            if off >= data.len() {
                                break;
                            }
                            match AppLib::send(&app, sim, fd, &data[off..]) {
                                Ok(n) => *sent.borrow_mut() += n,
                                Err(_) => break,
                            }
                        }
                    }
                },
            ));
            tx_app.borrow_mut().set_event_handler(cfd, h);
        }
        let dst = InetAddr::new(bed.hosts[1].ip, 80);
        AppLib::connect(&tx_app, &mut bed.sim, cfd, dst).unwrap();

        // Drive with periodic nudges: the sender's Writable events plus
        // TCP's own timers must recover from anything the wire does.
        let mut guard = 0;
        while received.borrow().len() < total {
            guard += 1;
            prop_assert!(guard < 6_000, "stalled at {} bytes", received.borrow().len());
            let t = bed.sim.now() + SimTime::from_millis(200);
            bed.sim.run_until(t);
        }
        let got = received.borrow().clone();
        prop_assert_eq!(&got[..], pattern.as_slice());
    }
}
