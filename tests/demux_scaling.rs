//! Scaling properties of the two demultiplexing strategies (§3.1).
//!
//! `tests/properties_deterministic.rs` checks CSPF/MPF agreement on
//! small tables; these tests push the table to the Table 5 scales
//! (up to 4096 filters) and widen the frame space to everything a wire
//! can carry — overlapping wildcard/connected filters, IP fragments,
//! ARP, and short/truncated frames — then additionally check that a
//! table grown and shrunk incrementally classifies exactly like a
//! table built from scratch with the surviving filters.

use psd::filter::{DemuxStrategy, DemuxTable, EndpointSpec, FilterEngine, FilterId};
use psd::sim::Rng;
use psd::wire::{
    EtherAddr, EtherType, EthernetHeader, IpProto, Ipv4Header, TcpFlags, TcpHeader, UdpHeader,
};
use std::net::Ipv4Addr;

/// Runs `body` for `cases` deterministic cases, each with its own
/// forked stream. The per-case seed appears in panic messages.
fn cases(base_seed: u64, cases: u32, mut body: impl FnMut(&mut Rng)) {
    let mut root = Rng::new(base_seed);
    for case in 0..cases {
        let seed = root.next_u64();
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

const HOST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// A random endpoint spec drawn from a port space sized to the table,
/// so large tables still produce wildcard/connected overlap on the
/// same local port.
fn rand_spec(rng: &mut Rng, ports: u64) -> EndpointSpec {
    let proto = if rng.chance(0.3) {
        IpProto::Tcp
    } else {
        IpProto::Udp
    };
    let lport = rng.range(1000, 1000 + ports - 1) as u16;
    if rng.chance(0.4) {
        EndpointSpec::connected(
            proto,
            HOST_IP,
            lport,
            Ipv4Addr::new(10, 0, 0, rng.range(1, 4) as u8),
            rng.range(2000, 2007) as u16,
        )
    } else {
        EndpointSpec::unconnected(proto, HOST_IP, lport)
    }
}

struct FrameSpec {
    tcp: bool,
    src: (Ipv4Addr, u16),
    dst: (Ipv4Addr, u16),
    frag_offset: u16,
    more_fragments: bool,
    truncate: Option<usize>,
}

fn build_frame(fs: &FrameSpec) -> Vec<u8> {
    let proto = if fs.tcp { IpProto::Tcp } else { IpProto::Udp };
    let tl = if fs.tcp { 20 } else { 8 };
    let mut ip = Ipv4Header::new(fs.src.0, fs.dst.0, proto, tl);
    ip.frag_offset = fs.frag_offset;
    ip.more_fragments = fs.more_fragments;
    let eth = EthernetHeader {
        dst: EtherAddr::local(2),
        src: EtherAddr::local(1),
        ethertype: EtherType::Ipv4,
    };
    let mut f = eth.encode().to_vec();
    f.extend_from_slice(&ip.encode());
    if fs.tcp {
        let h = TcpHeader {
            src_port: fs.src.1,
            dst_port: fs.dst.1,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            urgent: 0,
            mss: None,
        };
        f.extend_from_slice(&h.encode());
    } else {
        f.extend_from_slice(&UdpHeader::new(fs.src.1, fs.dst.1, 0).encode());
    }
    if let Some(len) = fs.truncate {
        f.truncate(len);
    }
    f
}

/// A random probe frame over the same space the specs are drawn from,
/// with fragments, short frames and the occasional ARP mixed in.
fn rand_frame(rng: &mut Rng, ports: u64) -> Vec<u8> {
    if rng.chance(0.05) {
        // ARP: never claimed by a session filter.
        let p =
            psd::wire::ArpPacket::request(EtherAddr::local(1), Ipv4Addr::new(10, 0, 0, 1), HOST_IP);
        let eth = EthernetHeader {
            dst: EtherAddr::local(2),
            src: EtherAddr::local(1),
            ethertype: EtherType::Arp,
        };
        let mut f = eth.encode().to_vec();
        f.extend_from_slice(&p.encode());
        return f;
    }
    let fragmented = rng.chance(0.1);
    let fs = FrameSpec {
        tcp: rng.chance(0.3),
        src: (
            Ipv4Addr::new(10, 0, 0, rng.range(1, 5) as u8),
            rng.range(2000, 2009) as u16,
        ),
        dst: (
            if rng.chance(0.9) {
                HOST_IP
            } else {
                Ipv4Addr::new(10, 0, 0, 9)
            },
            rng.range(1000, 1000 + ports + 1) as u16,
        ),
        frag_offset: if fragmented {
            rng.range(1, 100) as u16 * 8
        } else {
            0
        },
        more_fragments: fragmented && rng.chance(0.5),
        // Truncate strictly below the transport-port words (bytes
        // 34..38). A frame cut *inside* the transport header is
        // implementation-defined: CSPF's compiled program reads only
        // the words it references (ports still in bounds -> accept),
        // while MPF validates the IP total-length against the buffer
        // (-> reject). Such runts never leave the simulated ether, so
        // the equivalence property is only claimed outside them.
        truncate: rng.chance(0.08).then(|| rng.below(38) as usize),
    };
    build_frame(&fs)
}

/// Installs `n` random filters into both tables, skipping exact
/// duplicates (both strategies resolve duplicates to the earliest
/// install, but the property stays implementation-independent).
fn grow_pair(rng: &mut Rng, n: usize, ports: u64) -> (DemuxTable<usize>, DemuxTable<usize>) {
    let mut cspf: DemuxTable<usize> = DemuxTable::new(DemuxStrategy::Cspf);
    let mut mpf: DemuxTable<usize> = DemuxTable::new(DemuxStrategy::Mpf);
    let mut seen = std::collections::HashSet::new();
    let mut owner = 0usize;
    while owner < n {
        let spec = rand_spec(rng, ports);
        if !seen.insert((
            spec.proto.to_u8(),
            spec.local_ip,
            spec.local_port,
            spec.remote,
        )) {
            continue;
        }
        cspf.install(spec, owner);
        mpf.install(spec, owner);
        owner += 1;
    }
    (cspf, mpf)
}

/// CSPF and MPF classify byte-identical owners at every table size the
/// Table 5 benchmark uses, over frames including fragments, ARP and
/// truncated runts.
#[test]
fn strategies_agree_at_table5_scales() {
    for (size, ports, n_cases, probes) in [
        (16usize, 24u64, 24u32, 64u64),
        (256, 300, 8, 64),
        (4096, 4800, 2, 128),
    ] {
        cases(0x5ca1_e000 + size as u64, n_cases, |rng| {
            let (cspf, mpf) = grow_pair(rng, size, ports);
            for _ in 0..probes {
                let frame = rand_frame(rng, ports);
                let a = cspf.classify(&frame);
                let b = mpf.classify(&frame);
                assert_eq!(
                    a.owner.map(|o| o.1),
                    b.owner.map(|o| o.1),
                    "owners diverge on frame {frame:02x?}"
                );
            }
        });
    }
}

/// MPF's per-packet cost is independent of the table size while CSPF's
/// grows without bound — measured on the same tables, same frames.
#[test]
fn mpf_steps_flat_cspf_steps_linear_at_4096() {
    let mut rng = Rng::new(0x5ca1_e111);
    let probe = |cspf: &DemuxTable<usize>, mpf: &DemuxTable<usize>| -> (usize, usize) {
        // Probe a frame that no filter claims: CSPF's worst case (it
        // scans everything), and MPF's equally-common case.
        let fs = FrameSpec {
            tcp: false,
            src: (Ipv4Addr::new(10, 0, 0, 1), 2003),
            dst: (HOST_IP, 900),
            frag_offset: 0,
            more_fragments: false,
            truncate: None,
        };
        let frame = build_frame(&fs);
        (cspf.classify(&frame).steps, mpf.classify(&frame).steps)
    };
    let (cspf_small, mpf_small) = grow_pair(&mut rng, 16, 24);
    let (cspf_large, mpf_large) = grow_pair(&mut rng, 4096, 4800);
    let (c16, m16) = probe(&cspf_small, &mpf_small);
    let (c4096, m4096) = probe(&cspf_large, &mpf_large);
    assert_eq!(m16, m4096, "MPF cost must not depend on the table size");
    assert!(
        c4096 >= c16 * 64,
        "CSPF cost must scale with the table ({c16} -> {c4096})"
    );
}

/// Connected-beats-wildcard precedence survives the compile tier at
/// the top Table 5 scale: with 4096 filters installed under the
/// `Compiled` engine, a local port claimed by both a wildcard and a
/// connected filter resolves to the connected one for the connected
/// remote and to the wildcard for everyone else — and the owner and
/// charged steps match the interpreting engine exactly, under both
/// strategies.
#[test]
fn connected_beats_wildcard_at_4096_filters_under_compiled_engine() {
    let ports = 4800u64;
    cases(0x5ca1_e333, 2, |rng| {
        for strategy in [DemuxStrategy::Cspf, DemuxStrategy::Mpf] {
            let mut interp: DemuxTable<usize> =
                DemuxTable::with_engine(strategy, FilterEngine::Interpret);
            let mut comp: DemuxTable<usize> =
                DemuxTable::with_engine(strategy, FilterEngine::Compiled);
            let mut seen = std::collections::HashSet::new();
            let mut owner = 0usize;
            while owner < 4094 {
                let spec = rand_spec(rng, ports);
                if !seen.insert((
                    spec.proto.to_u8(),
                    spec.local_ip,
                    spec.local_port,
                    spec.remote,
                )) {
                    continue;
                }
                interp.install(spec, owner);
                comp.install(spec, owner);
                owner += 1;
            }
            // The contested port: a wildcard and a (more specific)
            // connected filter, wildcard installed first so precedence
            // cannot be an accident of install order.
            let peer = (Ipv4Addr::new(10, 0, 0, 1), 2003u16);
            let port = 999u16; // outside the random port space
            let wild = EndpointSpec::unconnected(psd::wire::IpProto::Udp, HOST_IP, port);
            let conn =
                EndpointSpec::connected(psd::wire::IpProto::Udp, HOST_IP, port, peer.0, peer.1);
            let wild_owner = 100_000usize;
            let conn_owner = 100_001usize;
            for t in [&mut interp, &mut comp] {
                t.install(wild, wild_owner);
                t.install(conn, conn_owner);
            }
            assert_eq!(comp.compiled_artifacts(), comp.len());

            let from_peer = build_frame(&FrameSpec {
                tcp: false,
                src: peer,
                dst: (HOST_IP, port),
                frag_offset: 0,
                more_fragments: false,
                truncate: None,
            });
            let from_other = build_frame(&FrameSpec {
                tcp: false,
                src: (Ipv4Addr::new(10, 0, 0, 4), 2008),
                dst: (HOST_IP, port),
                frag_offset: 0,
                more_fragments: false,
                truncate: None,
            });
            for (frame, want) in [(&from_peer, conn_owner), (&from_other, wild_owner)] {
                let a = interp.classify(frame);
                let b = comp.classify(frame);
                assert_eq!(b.owner.map(|o| o.1), Some(want), "{strategy:?}: precedence");
                assert_eq!(a.owner, b.owner, "{strategy:?}: engines disagree on owner");
                assert_eq!(a.steps, b.steps, "{strategy:?}: engines disagree on steps");
            }
        }
    });
}

/// A table grown and shrunk incrementally is indistinguishable from a
/// table built fresh from the surviving filters: same owners, same
/// step counts, same spec lookups. This pins the incremental
/// order/index maintenance added for Table 5 to the semantics of a
/// from-scratch build.
#[test]
fn incremental_maintenance_matches_fresh_rebuild() {
    cases(0x5ca1_e222, 16, |rng| {
        for strategy in [DemuxStrategy::Cspf, DemuxStrategy::Mpf] {
            let ports = 40;
            let mut live: DemuxTable<usize> = DemuxTable::new(strategy);
            let mut ids: Vec<(FilterId, EndpointSpec, usize)> = Vec::new();
            // Random interleaving of installs and removes (removes
            // target a random live filter, including re-removal of a
            // dead id, which must be a no-op).
            for step in 0..rng.range(50, 300) as usize {
                if !ids.is_empty() && rng.chance(0.4) {
                    let idx = rng.below(ids.len() as u64) as usize;
                    let (id, _, _) = ids.swap_remove(idx);
                    assert!(live.remove(id));
                    assert!(!live.remove(id), "double remove must fail");
                    assert_eq!(live.spec(id), None);
                } else {
                    let spec = rand_spec(rng, ports);
                    let id = live.install(spec, step);
                    ids.push((id, spec, step));
                }
            }
            // Fresh rebuild: survivors in original install order.
            ids.sort_by_key(|(id, _, _)| id.0);
            let mut fresh: DemuxTable<usize> = DemuxTable::new(strategy);
            let mut fresh_ids = Vec::new();
            for (_, spec, owner) in &ids {
                fresh_ids.push(fresh.install(*spec, *owner));
            }
            assert_eq!(live.len(), fresh.len());
            for ((live_id, spec, _), fresh_id) in ids.iter().zip(&fresh_ids) {
                assert_eq!(live.spec(*live_id), Some(*spec));
                assert_eq!(fresh.spec(*fresh_id), Some(*spec));
            }
            for _ in 0..64 {
                let frame = rand_frame(rng, ports);
                let a = live.classify(&frame);
                let b = fresh.classify(&frame);
                assert_eq!(
                    a.owner.map(|o| o.1),
                    b.owner.map(|o| o.1),
                    "{strategy:?}: incremental and fresh tables diverge"
                );
                assert_eq!(a.steps, b.steps, "{strategy:?}: step counts diverge");
            }
        }
    });
}
