//! Protocol metastate caching (§3.3): routes and ARP mappings are owned
//! by the operating system, cached by applications, and invalidated
//! through callbacks.

mod common;

use common::udp_echo_server;
use psd::core::AppLib;
use psd::netstack::InetAddr;
use psd::server::{OsServer, Proto};
use psd::sim::Platform;
use psd::systems::{SystemConfig, TestBed};

#[test]
fn migrated_sessions_carry_the_metastate_snapshot() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 81);
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let app = bed.hosts[0].spawn_app();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd, 9000).unwrap();
    // The migration loaded the server's route table into the library.
    let stack = app.borrow().stack().unwrap();
    let os_stack = bed.hosts[0].server.as_ref().unwrap().borrow().stack();
    assert_eq!(
        stack.borrow().routes.version(),
        os_stack.borrow().routes.version()
    );
    assert!(
        stack.borrow().routes.lookup(bed.hosts[1].ip).is_some(),
        "the library can route without asking the server"
    );
}

#[test]
fn arp_invalidation_reaches_application_caches() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 83);
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let app = bed.hosts[0].spawn_app();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd, 9000).unwrap();
    AppLib::connect(&app, &mut bed.sim, fd, InetAddr::new(bed.hosts[1].ip, 53)).unwrap();
    bed.settle();
    AppLib::sendto(&app, &mut bed.sim, fd, b"warm", None).unwrap();
    bed.settle();
    let stack = app.borrow().stack().unwrap();
    let now = bed.sim.now();
    assert!(
        stack.borrow().arp.lookup(bed.hosts[1].ip, now).is_some(),
        "warm traffic populated the application's ARP cache"
    );

    // The server invalidates the entry; the callback must clear the
    // application's cached copy ("The operating system maintains
    // callbacks into applications for these cached entries and
    // invalidates them as they expire or are updated").
    let os = bed.hosts[0].server.clone().unwrap();
    OsServer::invalidate_arp(&os, &mut bed.sim, bed.hosts[1].ip);
    bed.settle();
    let now = bed.sim.now();
    assert!(
        stack.borrow().arp.lookup(bed.hosts[1].ip, now).is_none(),
        "invalidation must reach the application cache"
    );
    assert!(app.borrow().stats.arp_invalidations >= 1);

    // Traffic recovers: the next sends re-resolve through the server.
    AppLib::sendto(&app, &mut bed.sim, fd, b"after invalidation", None).unwrap();
    bed.settle();
    AppLib::sendto(&app, &mut bed.sim, fd, b"after invalidation", None).unwrap();
    bed.settle();
    let mut buf = [0u8; 64];
    let mut got = 0;
    while let Ok((n, _)) = AppLib::recvfrom(&app, &mut bed.sim, fd, &mut buf) {
        got += n;
    }
    assert!(got > 0, "traffic must recover after re-resolution");
}

#[test]
fn library_resolver_caches_after_one_rpc() {
    let mut bed = TestBed::new(
        SystemConfig::LibraryShmIpf,
        Platform::DecStation5000_200,
        85,
    );
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let app = bed.hosts[0].spawn_app();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd, 9000).unwrap();
    AppLib::connect(&app, &mut bed.sim, fd, InetAddr::new(bed.hosts[1].ip, 53)).unwrap();
    bed.settle();
    AppLib::sendto(&app, &mut bed.sim, fd, b"a", None).unwrap();
    bed.settle();
    let rpcs_after_first = app.borrow().stats.control_rpcs;
    for _ in 0..10 {
        AppLib::sendto(&app, &mut bed.sim, fd, b"b", None).unwrap();
        bed.settle();
    }
    assert_eq!(
        app.borrow().stats.control_rpcs,
        rpcs_after_first,
        "steady-state sends must not consult the server"
    );
}
