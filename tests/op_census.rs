//! Counter invariants over the operation census (§4.1/§4.3): the
//! structural claims of the paper — how many copies, crossings and
//! wakeups each architecture performs per packet — asserted directly,
//! independent of the cost model.
//!
//! Every scenario warms up first (ARP, implicit bind, session
//! migration) and only then attaches the census, so the counters cover
//! exactly the steady-state data path.

mod common;

use common::run_until;
use psd::core::{AppHandle, AppLib, Fd, FdEventFn};
use psd::netstack::{InetAddr, SockEvent};
use psd::server::Proto;
use psd::sim::{CensusHandle, Domain, Layer, OpKind, Platform, SimTime};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::rc::Rc;

/// Binds a UDP socket on `port` that drains (and discards) every
/// datagram as it becomes readable, counting them.
fn udp_drain(bed: &mut TestBed, app: &AppHandle, port: u16) -> Rc<RefCell<usize>> {
    let fd = AppLib::socket(app, &mut bed.sim, Proto::Udp);
    AppLib::bind(app, &mut bed.sim, fd, port).expect("bind");
    let got = Rc::new(RefCell::new(0usize));
    let (app2, got2) = (app.clone(), got.clone());
    let handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                let mut buf = [0u8; 4096];
                while AppLib::recvfrom(&app2, sim, fd, &mut buf).is_ok() {
                    *got2.borrow_mut() += 1;
                }
            }
        },
    ));
    app.borrow_mut().set_event_handler(fd, handler);
    got
}

/// One host-0 → host-1 UDP scenario: receiver drains on `PORT`, the
/// sender's first datagram (implicit bind + ARP + any migration) runs
/// un-censused, then `n` datagrams of `len` bytes are counted.
/// Returns (per-host censuses, receiver datagram count).
struct UdpRun {
    censuses: Vec<CensusHandle>,
    bed: TestBed,
    tx_app: AppHandle,
    tx_fd: Fd,
    received: Rc<RefCell<usize>>,
}

const PORT: u16 = 4800;

/// Sends warm-up datagrams until one is delivered (the first library
/// send to a fresh destination is dropped while ARP resolves).
fn warm_up(
    bed: &mut TestBed,
    tx_app: &AppHandle,
    tx_fd: Fd,
    dst: InetAddr,
    received: &Rc<RefCell<usize>>,
) {
    let target = *received.borrow() + 1;
    for _ in 0..50 {
        AppLib::sendto(tx_app, &mut bed.sim, tx_fd, b"warmup", Some(dst)).expect("warmup send");
        if run_until(bed, SimTime::from_millis(500), || {
            *received.borrow() >= target
        }) {
            bed.settle();
            return;
        }
    }
    panic!("warm-up datagram never delivered");
}

fn udp_setup(config: SystemConfig, seed: u64) -> UdpRun {
    let mut bed = TestBed::new(config, Platform::DecStation5000_200, seed);
    let rx_app = bed.hosts[1].spawn_app();
    let received = udp_drain(&mut bed, &rx_app, PORT);
    let tx_app = bed.hosts[0].spawn_app();
    let tx_fd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Udp);
    let dst = InetAddr::new(bed.hosts[1].ip, PORT);
    // Warm-up: ARP resolution, implicit bind, session migration. The
    // library stack drops a datagram on an ARP miss (recovery is the
    // protocol's job, and UDP has none), so retry until one lands.
    warm_up(&mut bed, &tx_app, tx_fd, dst, &received);
    let censuses = bed.attach_census();
    UdpRun {
        censuses,
        bed,
        tx_app,
        tx_fd,
        received,
    }
}

impl UdpRun {
    /// Sends `n` datagrams of `len` bytes and waits for delivery.
    fn send(&mut self, n: usize, len: usize) {
        let dst = InetAddr::new(self.bed.hosts[1].ip, PORT);
        let already = *self.received.borrow();
        for _ in 0..n {
            AppLib::sendto(
                &self.tx_app,
                &mut self.bed.sim,
                self.tx_fd,
                &vec![7u8; len],
                Some(dst),
            )
            .expect("send");
        }
        assert!(
            run_until(&mut self.bed, SimTime::from_secs(10), || *self
                .received
                .borrow()
                >= already + n),
            "datagrams not delivered"
        );
        self.bed.settle();
    }
}

/// Table 2's structural explanation: the number of times a received
/// packet's body is physically moved, per architecture. SHM-IPF's
/// integrated filter saves the up-front device copy (2 moves); SHM and
/// IPC both take 3; the server path adds the app↔server RPC for a
/// total of 6.
#[test]
fn body_copy_counts_order_the_architectures() {
    let n = 10;
    let per_packet = |config: SystemConfig, seed: u64| -> u64 {
        let mut run = udp_setup(config, seed);
        run.send(n, 256);
        let total = run.censuses[1].borrow().total(OpKind::PacketBodyCopy);
        assert_eq!(
            total % n as u64,
            0,
            "{}: {total} body copies not a multiple of {n} packets",
            config.label()
        );
        total / n as u64
    };
    let shm_ipf = per_packet(SystemConfig::LibraryShmIpf, 11);
    let shm = per_packet(SystemConfig::LibraryShm, 12);
    let ipc = per_packet(SystemConfig::LibraryIpc, 13);
    let in_kernel = per_packet(SystemConfig::Mach25InKernel, 14);
    let server = per_packet(SystemConfig::UxServer, 15);
    assert_eq!(shm_ipf, 2, "SHM-IPF: ring copy + copyout");
    assert_eq!(shm, 3, "SHM: device read + ring copy + copyout");
    assert_eq!(ipc, 3, "IPC: device read + message copy + copyout");
    assert_eq!(in_kernel, 2, "in-kernel: device read + copyout");
    assert_eq!(server, 6, "server: device read + IPC + copyout + 3 RPC");
    assert!(shm_ipf < shm && shm == ipc && ipc < server);
    assert_eq!(shm_ipf, in_kernel, "the §4.1 claim: IPF matches in-kernel");
}

/// §4.3: library data calls never cross a protection boundary at the
/// socket interface — the only crossing is the packet-send trap — while
/// every server-based data call is one RPC, i.e. two crossings (into
/// the server and back).
#[test]
fn library_data_path_has_zero_rpc_crossings() {
    let n = 8;

    // Library: n sends cross only at the device (EtherOutput).
    let mut run = udp_setup(SystemConfig::LibraryShm, 21);
    run.send(n, 128);
    for (host, census) in run.censuses.iter().enumerate() {
        let c = census.borrow();
        for layer in [Layer::EntryCopyin, Layer::CopyoutExit, Layer::Control] {
            assert_eq!(
                c.layer_total(OpKind::BoundaryCrossing, layer),
                0,
                "library host{host}: unexpected {} crossing",
                layer.label()
            );
        }
    }
    let c0 = run.censuses[0].borrow();
    assert_eq!(
        c0.count(OpKind::BoundaryCrossing, Domain::Kernel, Layer::EtherOutput),
        n as u64,
        "one device-write trap per datagram"
    );
    assert_eq!(c0.domain_total(OpKind::BoundaryCrossing, Domain::Server), 0);
    drop(c0);

    // Server-based: each sendto is one RPC = two census crossings
    // (request enters the server, reply re-enters the library), plus
    // the server's own device-write trap.
    let mut run = udp_setup(SystemConfig::UxServer, 22);
    run.send(n, 128);
    let c0 = run.censuses[0].borrow();
    assert_eq!(
        c0.count(OpKind::BoundaryCrossing, Domain::Server, Layer::EntryCopyin),
        n as u64
    );
    assert_eq!(
        c0.count(
            OpKind::BoundaryCrossing,
            Domain::Library,
            Layer::EntryCopyin
        ),
        n as u64
    );
    assert_eq!(
        c0.count(OpKind::BoundaryCrossing, Domain::Kernel, Layer::EtherOutput),
        n as u64
    );
    // And the receive side pays the same RPC toll per recvfrom.
    let c1 = run.censuses[1].borrow();
    assert_eq!(
        c1.count(OpKind::BoundaryCrossing, Domain::Server, Layer::CopyoutExit),
        n as u64
    );
    assert_eq!(
        c1.count(
            OpKind::BoundaryCrossing,
            Domain::Library,
            Layer::CopyoutExit
        ),
        n as u64
    );
}

/// A fresh library UDP socket migrates once (the server-synthesized
/// capsule is imported by the library) on its first send; the data
/// packets that follow migrate nothing.
#[test]
fn implicit_bind_migrates_exactly_once() {
    let mut run = udp_setup(SystemConfig::LibraryShm, 31);
    // The warmed-up socket: no further migrations, ever.
    run.send(4, 64);
    assert_eq!(run.censuses[0].borrow().total(OpKind::SessionMigration), 0);
    // A brand-new socket under census: exactly one import, in the
    // library, on the control path.
    let fd = AppLib::socket(&run.tx_app, &mut run.bed.sim, Proto::Udp);
    let dst = InetAddr::new(run.bed.hosts[1].ip, PORT);
    AppLib::sendto(&run.tx_app, &mut run.bed.sim, fd, b"x", Some(dst)).expect("send");
    run.bed.settle();
    let c0 = run.censuses[0].borrow();
    assert_eq!(c0.total(OpKind::SessionMigration), 1);
    assert_eq!(
        c0.count(OpKind::SessionMigration, Domain::Library, Layer::Control),
        1
    );
}

/// §4.1's wakeup amortization: a burst of small datagrams into a SHM
/// ring wakes the receiving thread fewer times than there are packets
/// (the thread drains the ring while the kernel keeps appending),
/// while the IPC path pays one scheduler wakeup per packet.
#[test]
fn shm_amortizes_wakeups_ipc_does_not() {
    let burst = 12;

    let mut run = udp_setup(SystemConfig::LibraryShm, 41);
    let amortized_before = run.bed.hosts[1].kernel.borrow().stats().wakeups_amortized;
    run.send(burst, 1);
    let shm_wakeups =
        run.censuses[1]
            .borrow()
            .count(OpKind::Wakeup, Domain::Kernel, Layer::KernelCopyout);
    let amortized = run.bed.hosts[1].kernel.borrow().stats().wakeups_amortized - amortized_before;
    assert!(
        shm_wakeups < burst as u64,
        "SHM: expected fewer than {burst} wakeups, got {shm_wakeups}"
    );
    assert!(amortized > 0, "SHM: expected amortized wakeups");
    assert_eq!(shm_wakeups + amortized, burst as u64);

    let mut run = udp_setup(SystemConfig::LibraryIpc, 41);
    run.send(burst, 1);
    let ipc_wakeups =
        run.censuses[1]
            .borrow()
            .count(OpKind::Wakeup, Domain::Kernel, Layer::KernelCopyout);
    assert_eq!(
        ipc_wakeups, burst as u64,
        "IPC: one scheduler wakeup per packet"
    );
    assert_eq!(
        run.bed.hosts[1].kernel.borrow().stats().wakeups_amortized,
        0
    );
}

/// §3.4 isolation, observed through the census: the per-session
/// `FilterRun` attribution counts a packet only against the session it
/// is destined for. Traffic to app B never shows up under app A.
#[test]
fn filter_runs_attribute_only_to_the_destination_session() {
    let mut bed = TestBed::new(
        SystemConfig::LibraryShmIpf,
        Platform::DecStation5000_200,
        51,
    );
    let app_a = bed.hosts[1].spawn_app();
    let app_b = bed.hosts[1].spawn_app();
    let got_a = udp_drain(&mut bed, &app_a, 6001);
    let got_b = udp_drain(&mut bed, &app_b, 6002);
    let tx_app = bed.hosts[0].spawn_app();
    let tx_fd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Udp);
    let to_a = InetAddr::new(bed.hosts[1].ip, 6001);
    let to_b = InetAddr::new(bed.hosts[1].ip, 6002);
    // Warm up both paths, then census.
    warm_up(&mut bed, &tx_app, tx_fd, to_a, &got_a);
    warm_up(&mut bed, &tx_app, tx_fd, to_b, &got_b);
    let censuses = bed.attach_census();

    // Discover each session's census scope by sending to it alone.
    let scopes_after = |bed: &mut TestBed, dst: InetAddr, n: usize| -> Vec<(u64, u64)> {
        for _ in 0..n {
            AppLib::sendto(&tx_app, &mut bed.sim, tx_fd, b"payload", Some(dst)).expect("send");
        }
        bed.settle();
        let snap = censuses[1].borrow().snapshot();
        let scopes = scoped_filter_runs(&snap);
        censuses[1].borrow_mut().reset();
        scopes
    };
    let a_scopes = scopes_after(&mut bed, to_a, 3);
    assert_eq!(a_scopes.len(), 1, "one session matched: {a_scopes:?}");
    assert_eq!(a_scopes[0].1, 3);
    let b_scopes = scopes_after(&mut bed, to_b, 5);
    assert_eq!(b_scopes.len(), 1, "one session matched: {b_scopes:?}");
    assert_eq!(b_scopes[0].1, 5);
    assert_ne!(a_scopes[0].0, b_scopes[0].0, "A and B are distinct scopes");

    // Mixed traffic still attributes per destination only.
    let a_scope = a_scopes[0].0;
    let b_scope = b_scopes[0].0;
    for _ in 0..4 {
        AppLib::sendto(&tx_app, &mut bed.sim, tx_fd, b"p", Some(to_b)).expect("send");
    }
    AppLib::sendto(&tx_app, &mut bed.sim, tx_fd, b"p", Some(to_a)).expect("send");
    bed.settle();
    let census = censuses[1].borrow();
    assert_eq!(census.scoped(OpKind::FilterRun, b_scope), 4);
    assert_eq!(census.scoped(OpKind::FilterRun, a_scope), 1);
}

/// Parses `filter_run scope=N COUNT` lines out of a census snapshot.
fn scoped_filter_runs(snapshot: &str) -> Vec<(u64, u64)> {
    snapshot
        .lines()
        .filter(|l| l.starts_with("filter_run"))
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            it.next()?;
            let scope = it.next()?.strip_prefix("scope=")?.parse().ok()?;
            let count = it.next()?.parse().ok()?;
            Some((scope, count))
        })
        .collect()
}

/// Observability is deterministic: identically seeded runs produce
/// byte-identical census snapshots on both hosts.
#[test]
fn seeded_runs_produce_identical_censuses() {
    let snapshots = |seed: u64| -> Vec<String> {
        let mut run = udp_setup(SystemConfig::LibraryShm, seed);
        run.send(6, 200);
        run.censuses.iter().map(|c| c.borrow().snapshot()).collect()
    };
    let a = snapshots(77);
    let b = snapshots(77);
    assert_eq!(a, b);
    assert!(
        a.iter().any(|s| !s.is_empty()),
        "censuses actually recorded something"
    );
}

/// The tracer's operation totals must equal the census's: both are fed
/// from the same charge-site hook, so any divergence means a counting
/// site notified one but not the other (double- or under-accounting).
/// Scoped to the kinds the census only learns through `Charge` —
/// session-migration events reach the census directly.
#[test]
fn tracer_and_census_count_the_same_operations() {
    for (config, seed) in [
        (SystemConfig::Mach25InKernel, 91),
        (SystemConfig::LibraryIpc, 92),
        (SystemConfig::LibraryShmIpf, 93),
    ] {
        let mut run = udp_setup(config, seed);
        let tracer = run.bed.attach_tracer();
        run.send(9, 300);
        let t = tracer.borrow();
        for op in [
            OpKind::PacketBodyCopy,
            OpKind::BoundaryCrossing,
            OpKind::Wakeup,
        ] {
            let census: u64 = run.censuses.iter().map(|c| c.borrow().total(op)).sum();
            assert_eq!(
                t.op_total(op),
                census,
                "{}: tracer and census disagree on {op:?}",
                config.label()
            );
        }
        assert!(
            t.op_total(OpKind::PacketBodyCopy) > 0,
            "{}: expected copies during the burst",
            config.label()
        );
    }
}
