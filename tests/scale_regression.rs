//! Scale-regression suite behind Table 5: the per-packet structural
//! invariants that must survive a high session count.
//!
//! `tests/op_census.rs` pins the per-datagram copy/crossing counts at
//! two sessions; `tests/demux_scaling.rs` pins the classifier cost on
//! a bare table. These tests close the loop end-to-end: driven through
//! the whole system by the session-scaling workload engine, MPF's
//! per-packet filter cost must not depend on the session count while
//! CSPF's grows, and the per-datagram body-copy counts (2 for SHM-IPF,
//! 3 for SHM, 3 for IPC, 6 for the server path) must be exactly the
//! same with 4096 live sessions standing by as with none.

mod common;

use common::run_until;
use psd::bench::{session_scaling, WorkloadSpec};
use psd::core::{AppHandle, AppLib, Fd, FdEventFn};
use psd::filter::DemuxStrategy;
use psd::netstack::{InetAddr, SockEvent};
use psd::server::Proto;
use psd::sim::{CensusHandle, OpKind, Platform, SimTime};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::rc::Rc;

/// MPF's per-packet filter cost, measured at the receiving kernel's
/// demultiplexer under the full workload engine, is independent of the
/// session count; CSPF's grows with it. This is the Table 5 claim as a
/// regression test (the benchmark itself runs to N=4096; N=256 is
/// enough to regress the asymptotic shape).
#[test]
fn kernel_filter_cost_flat_for_mpf_linear_for_cspf() {
    let run = |strategy: DemuxStrategy, n: usize| {
        session_scaling(
            SystemConfig::LibraryShm,
            Platform::DecStation5000_200,
            strategy,
            &WorkloadSpec::at_scale(n, 128, 42),
            false,
        )
    };
    let m16 = run(DemuxStrategy::Mpf, 16);
    let m256 = run(DemuxStrategy::Mpf, 256);
    assert!(
        m256.filters > m16.filters * 8,
        "engine must install per-session filters ({} -> {})",
        m16.filters,
        m256.filters
    );
    // Flat: the only variation allowed is the connected/wildcard probe
    // mix (one extra instruction on wildcard hits), never the table
    // size.
    assert!(
        (m256.steps_per_packet - m16.steps_per_packet).abs() <= 2.0,
        "MPF steps/pkt must not scale with sessions: {:.1} at N=16 vs {:.1} at N=256",
        m16.steps_per_packet,
        m256.steps_per_packet
    );

    let c16 = run(DemuxStrategy::Cspf, 16);
    let c256 = run(DemuxStrategy::Cspf, 256);
    assert!(
        c256.steps_per_packet >= c16.steps_per_packet * 4.0,
        "CSPF steps/pkt must grow with sessions: {:.1} at N=16 vs {:.1} at N=256",
        c16.steps_per_packet,
        c256.steps_per_packet
    );
    assert!(
        c256.steps_per_packet > m256.steps_per_packet * 10.0,
        "at N=256 CSPF ({:.1}) must dwarf MPF ({:.1})",
        c256.steps_per_packet,
        m256.steps_per_packet
    );
}

/// First ballast port. Keeps the ballast sessions clear of the
/// measured drain port.
const BALLAST_BASE: u16 = 10_000;
/// The measured drain port.
const PORT: u16 = 4800;

/// A two-host UDP run with `ballast` extra live sessions on the
/// receiving host: the receiver stands up the ballast (wildcard binds,
/// each a live session with its own filter under library placements),
/// then a drain socket on [`PORT`]; the sender warms up ARP/implicit
/// bind un-censused; the census covers exactly the measured datagrams.
struct BallastRun {
    bed: TestBed,
    censuses: Vec<CensusHandle>,
    tx_app: AppHandle,
    tx_fd: Fd,
    received: Rc<RefCell<usize>>,
}

fn ballast_setup(config: SystemConfig, seed: u64, ballast: usize) -> BallastRun {
    let mut bed = TestBed::new(config, Platform::DecStation5000_200, seed);
    // MPF keeps the per-packet classify cost independent of the
    // ballast size; the body-copy counts under test are the same for
    // either strategy.
    for h in &bed.hosts {
        h.kernel.borrow_mut().set_demux_strategy(DemuxStrategy::Mpf);
    }
    let rx_app = bed.hosts[1].spawn_app();
    for i in 0..ballast {
        let fd = AppLib::socket(&rx_app, &mut bed.sim, Proto::Udp);
        AppLib::bind(&rx_app, &mut bed.sim, fd, BALLAST_BASE + i as u16).expect("ballast bind");
    }
    bed.settle();

    // The measured drain socket.
    let fd = AppLib::socket(&rx_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&rx_app, &mut bed.sim, fd, PORT).expect("drain bind");
    let received = Rc::new(RefCell::new(0usize));
    let (app2, got2) = (rx_app.clone(), received.clone());
    let handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                let mut buf = [0u8; 4096];
                while AppLib::recvfrom(&app2, sim, fd, &mut buf).is_ok() {
                    *got2.borrow_mut() += 1;
                }
            }
        },
    ));
    rx_app.borrow_mut().set_event_handler(fd, handler);

    let tx_app = bed.hosts[0].spawn_app();
    let tx_fd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Udp);
    let dst = InetAddr::new(bed.hosts[1].ip, PORT);
    // Warm up ARP + implicit bind + migration before the census; the
    // library stack drops a datagram on an ARP miss, so retry.
    let mut warmed = false;
    for _ in 0..50 {
        AppLib::sendto(&tx_app, &mut bed.sim, tx_fd, b"warmup", Some(dst)).expect("warmup send");
        if run_until(&mut bed, SimTime::from_millis(500), || {
            *received.borrow() >= 1
        }) {
            warmed = true;
            break;
        }
    }
    assert!(warmed, "warm-up datagram never delivered");
    bed.settle();
    let censuses = bed.attach_census();
    BallastRun {
        bed,
        censuses,
        tx_app,
        tx_fd,
        received,
    }
}

impl BallastRun {
    /// Sends `n` datagrams at the drain and waits for delivery.
    fn send(&mut self, n: usize) {
        let dst = InetAddr::new(self.bed.hosts[1].ip, PORT);
        let already = *self.received.borrow();
        for _ in 0..n {
            AppLib::sendto(
                &self.tx_app,
                &mut self.bed.sim,
                self.tx_fd,
                &[7u8; 256],
                Some(dst),
            )
            .expect("send");
        }
        assert!(
            run_until(&mut self.bed, SimTime::from_secs(10), || {
                *self.received.borrow() >= already + n
            }),
            "datagrams not delivered"
        );
        self.bed.settle();
    }
}

/// The §4.1 body-copy counts survive scale: with 4096 live sessions
/// standing by on the receiving host, each measured datagram still
/// moves exactly as many times as with two sessions — 2 for SHM-IPF,
/// 3 for SHM and IPC, 6 for the server path. A per-session cost hiding
/// in the data path (a scan over sessions that touches bodies, a
/// buffer strategy that degrades under load) would break this.
#[test]
fn body_copy_counts_unchanged_at_4096_sessions() {
    const BALLAST: usize = 4096;
    let n = 8;
    let per_packet = |config: SystemConfig, seed: u64| -> u64 {
        let mut run = ballast_setup(config, seed, BALLAST);
        assert_eq!(
            run.bed.hosts[1].kernel.borrow().filters_installed() > BALLAST,
            config.is_library(),
            "{}: ballast filter count",
            config.label()
        );
        run.send(n);
        let total = run.censuses[1].borrow().total(OpKind::PacketBodyCopy);
        assert_eq!(
            total % n as u64,
            0,
            "{}: {total} body copies not a multiple of {n} packets",
            config.label()
        );
        total / n as u64
    };
    assert_eq!(per_packet(SystemConfig::LibraryShmIpf, 11), 2);
    assert_eq!(per_packet(SystemConfig::LibraryShm, 12), 3);
    assert_eq!(per_packet(SystemConfig::LibraryIpc, 13), 3);
    assert_eq!(per_packet(SystemConfig::UxServer, 15), 6);
}
