//! Event-engine equivalence suite: the timer wheel vs the retained
//! `BinaryHeap` reference model.
//!
//! The timer-wheel rework of `psd_sim::Sim` is only admissible if it is
//! *observationally identical* to the queue it replaced — every archived
//! results table depends on events firing in exactly the old
//! `(time, seq)` order. This suite drives both engines with the same
//! seeded adversarial schedules — random interleavings of `at`/`after`/
//! `cancel` with in-event scheduling and cancellation, same-instant
//! bursts, far-future timers, cancel-after-fire and cancel-twice — and
//! asserts a byte-identical fire log, executed count, and final clock.
//!
//! It also pins the two structural improvements the wheel makes:
//! cancelling fired handles stores nothing (the reference model leaks a
//! `HashSet` entry per cancel), and slab-slot reuse cannot alias stale
//! handles onto new events (generation tags).

use std::cell::RefCell;
use std::rc::Rc;

use psd::sim::{BaselineHandle, BaselineQueue, Rng, Sim, SimHandle, SimTime};

/// What an event does when it fires, beyond logging: optionally arm a
/// later id, optionally cancel whatever handle an id currently maps to.
#[derive(Clone, Copy)]
struct Action {
    spawn: Option<(usize, u64)>, // (child id, delay ns)
    cancel: Option<usize>,
}

/// One scripted top-level operation.
#[derive(Clone, Copy, Debug)]
enum Op {
    At { id: usize, t: u64 },
    After { id: usize, d: u64 },
    Cancel { id: usize },
    Run { limit: u64 },
    RunUntil { t: u64 },
}

struct Script {
    ops: Vec<Op>,
    actions: Vec<Action>,
}

/// Generates a seeded adversarial schedule. Spawn targets always have a
/// larger id than their parent, so in-event scheduling chains are
/// finite; everything else — burst collisions, cancels of unarmed,
/// fired, or already-cancelled ids, far-future expiries — is fair game.
fn generate(seed: u64, n_ids: usize, n_ops: usize) -> Script {
    let mut rng = Rng::new(seed);
    let actions = (0..n_ids)
        .map(|id| Action {
            spawn: if id + 1 < n_ids && rng.chance(0.3) {
                let child = id + 1 + rng.below((n_ids - id - 1) as u64) as usize;
                // Zero-delay spawns probe the run-after-current-batch rule.
                let delay = if rng.chance(0.3) { 0 } else { rng.below(2_000) };
                Some((child, delay))
            } else {
                None
            },
            cancel: if rng.chance(0.35) {
                Some(rng.below(n_ids as u64) as usize)
            } else {
                None
            },
        })
        .collect();
    let mut ops = Vec::with_capacity(n_ops);
    let mut deadline = 0u64;
    for _ in 0..n_ops {
        let id = rng.below(n_ids as u64) as usize;
        ops.push(match rng.below(100) {
            // Absolute times drawn from a coarse grid force same-instant
            // bursts; `at` in the past exercises the clamp-to-now rule.
            0..=34 => Op::At {
                id,
                t: rng.below(60) * 100,
            },
            35..=49 => Op::After {
                id,
                d: rng.below(3_000),
            },
            // Far-future timers sit at the wheel's top levels; most are
            // later cancelled without ever cascading down.
            50..=54 => Op::After {
                id,
                d: (1 << 40) + rng.below(1 << 20),
            },
            55..=74 => Op::Cancel { id },
            75..=89 => Op::Run {
                limit: rng.below(8),
            },
            _ => {
                deadline += rng.below(1_500);
                Op::RunUntil { t: deadline }
            }
        });
    }
    Script { ops, actions }
}

/// (fire time ns, event id) — the observable the two engines must agree on.
type FireLog = Vec<(u64, usize)>;

struct SimCtx {
    log: Rc<RefCell<FireLog>>,
    handles: Rc<RefCell<Vec<Option<SimHandle>>>>,
    actions: Rc<Vec<Action>>,
}

fn arm_sim(sim: &mut Sim, id: usize, when: SimTime, ctx: &SimCtx) {
    let c = SimCtx {
        log: ctx.log.clone(),
        handles: ctx.handles.clone(),
        actions: ctx.actions.clone(),
    };
    let h = sim.at(when, move |s| {
        c.log.borrow_mut().push((s.now().as_nanos(), id));
        let act = c.actions[id];
        if let Some((child, delay)) = act.spawn {
            let when = s.now() + SimTime::from_nanos(delay);
            arm_sim(s, child, when, &c);
        }
        if let Some(victim) = act.cancel {
            let h = c.handles.borrow()[victim];
            if let Some(h) = h {
                s.cancel(h);
            }
        }
    });
    ctx.handles.borrow_mut()[id] = Some(h);
}

fn run_sim(script: &Script) -> (FireLog, u64, u64) {
    let mut sim = Sim::new(7);
    let ctx = SimCtx {
        log: Rc::new(RefCell::new(Vec::new())),
        handles: Rc::new(RefCell::new(vec![None; script.actions.len()])),
        actions: Rc::new(script.actions.clone()),
    };
    for &op in &script.ops {
        match op {
            Op::At { id, t } => arm_sim(&mut sim, id, SimTime::from_nanos(t), &ctx),
            Op::After { id, d } => {
                let when = sim.now() + SimTime::from_nanos(d);
                arm_sim(&mut sim, id, when, &ctx);
            }
            Op::Cancel { id } => {
                let h = ctx.handles.borrow()[id];
                if let Some(h) = h {
                    sim.cancel(h);
                }
            }
            Op::Run { limit } => {
                sim.run(limit);
            }
            Op::RunUntil { t } => {
                sim.run_until(SimTime::from_nanos(t));
            }
        }
    }
    sim.run_to_idle();
    let log = ctx.log.borrow().clone();
    (log, sim.executed(), sim.now().as_nanos())
}

struct BaseCtx {
    log: Rc<RefCell<FireLog>>,
    handles: Rc<RefCell<Vec<Option<BaselineHandle>>>>,
    actions: Rc<Vec<Action>>,
}

fn arm_base(q: &mut BaselineQueue, id: usize, when: SimTime, ctx: &BaseCtx) {
    let c = BaseCtx {
        log: ctx.log.clone(),
        handles: ctx.handles.clone(),
        actions: ctx.actions.clone(),
    };
    let h = q.at(when, move |s| {
        c.log.borrow_mut().push((s.now().as_nanos(), id));
        let act = c.actions[id];
        if let Some((child, delay)) = act.spawn {
            let when = s.now() + SimTime::from_nanos(delay);
            arm_base(s, child, when, &c);
        }
        if let Some(victim) = act.cancel {
            let h = c.handles.borrow()[victim];
            if let Some(h) = h {
                s.cancel(h);
            }
        }
    });
    ctx.handles.borrow_mut()[id] = Some(h);
}

fn run_base(script: &Script) -> (FireLog, u64, u64) {
    let mut q = BaselineQueue::new();
    let ctx = BaseCtx {
        log: Rc::new(RefCell::new(Vec::new())),
        handles: Rc::new(RefCell::new(vec![None; script.actions.len()])),
        actions: Rc::new(script.actions.clone()),
    };
    for &op in &script.ops {
        match op {
            Op::At { id, t } => arm_base(&mut q, id, SimTime::from_nanos(t), &ctx),
            Op::After { id, d } => {
                let when = q.now() + SimTime::from_nanos(d);
                arm_base(&mut q, id, when, &ctx);
            }
            Op::Cancel { id } => {
                let h = ctx.handles.borrow()[id];
                if let Some(h) = h {
                    q.cancel(h);
                }
            }
            Op::Run { limit } => {
                q.run(limit);
            }
            Op::RunUntil { t } => {
                q.run_until(SimTime::from_nanos(t));
            }
        }
    }
    q.run_to_idle();
    let log = ctx.log.borrow().clone();
    (log, q.executed(), q.now().as_nanos())
}

fn assert_equivalent(seed: u64, n_ids: usize, n_ops: usize) {
    let script = generate(seed, n_ids, n_ops);
    let (wheel_log, wheel_exec, wheel_now) = run_sim(&script);
    let (base_log, base_exec, base_now) = run_base(&script);
    assert_eq!(
        wheel_log, base_log,
        "fire order diverged for seed {seed} ({n_ids} ids, {n_ops} ops)"
    );
    assert_eq!(
        wheel_exec, base_exec,
        "executed count diverged for seed {seed}"
    );
    assert_eq!(wheel_now, base_now, "final clock diverged for seed {seed}");
    assert!(
        wheel_exec > 0,
        "seed {seed} executed nothing — schedule too thin"
    );
}

#[test]
fn wheel_matches_reference_across_seeds() {
    for seed in 0..40 {
        assert_equivalent(seed, 48, 400);
    }
}

#[test]
fn wheel_matches_reference_on_dense_bursts() {
    // Many ids on a tiny time grid: nearly every slot is a same-instant
    // burst, so ordering rests entirely on the seq tie-break.
    for seed in 100..110 {
        assert_equivalent(seed, 160, 1_200);
    }
}

#[test]
fn wheel_matches_reference_on_long_runs() {
    for seed in 200..204 {
        assert_equivalent(seed, 96, 3_000);
    }
}

#[test]
fn cancelling_100k_fired_handles_is_memory_free() {
    // The leak the rework fixes: the old engine parked one `HashSet`
    // entry per cancel of an already-fired handle, forever.
    let mut sim = Sim::new(11);
    let mut handles = Vec::with_capacity(100_000);
    for i in 0..100_000u64 {
        handles.push(sim.after(SimTime::from_nanos(i % 64), |_| {}));
    }
    sim.run_to_idle();
    assert_eq!(sim.executed(), 100_000);
    for h in handles {
        sim.cancel(h);
    }
    let stats = sim.queue_stats();
    assert_eq!(stats.live, 0);
    assert_eq!(
        stats.cancelled_pending, 0,
        "cancels of fired handles must store nothing: {stats:?}"
    );
    // Slab high-water mark reflects peak concurrency, not cancel volume.
    assert_eq!(stats.slab_slots, stats.free_slots, "all slots returned");

    // The reference model demonstrates the leak this replaces.
    let mut q = BaselineQueue::new();
    let mut handles = Vec::with_capacity(100_000);
    for i in 0..100_000u64 {
        handles.push(q.after(SimTime::from_nanos(i % 64), |_| {}));
    }
    q.run_to_idle();
    for h in handles {
        q.cancel(h);
    }
    assert_eq!(q.cancelled_set_len(), 100_000, "the old engine leaked");
}

#[test]
fn stale_handles_never_alias_reused_slots() {
    // ABA probe: fire an event, let its slab slot be reused by a new
    // event, then cancel through the stale handle — the new event must
    // still run.
    let mut sim = Sim::new(13);
    let fired = Rc::new(RefCell::new(Vec::new()));
    for round in 0..1_000u64 {
        let stale = {
            let fired = fired.clone();
            sim.after(SimTime::from_nanos(1), move |_| {
                fired.borrow_mut().push((round, 0));
            })
        };
        sim.run_to_idle();
        let fresh = {
            let fired = fired.clone();
            sim.after(SimTime::from_nanos(1), move |_| {
                fired.borrow_mut().push((round, 1));
            })
        };
        sim.cancel(stale); // stale: must not touch the reused slot
        sim.run_to_idle();
        let _ = fresh;
    }
    let log = fired.borrow();
    assert_eq!(log.len(), 2_000, "every event ran despite stale cancels");
    for round in 0..1_000u64 {
        assert_eq!(log[2 * round as usize], (round, 0));
        assert_eq!(log[2 * round as usize + 1], (round, 1));
    }
}
