//! Neutrality and conservation guarantees of the observability plane
//! (profiler + metrics):
//!
//! * attaching the charged-time profiler, the metrics sampler, or both
//!   to a seeded run changes nothing observable — the full digest
//!   (workload results, kernel counters, census, CPU busy time, event
//!   count, final virtual clock) is byte-identical to a detached run,
//!   with and without an armed fault plane;
//! * exact time conservation: the profiler's summed attributed
//!   nanoseconds equals `Cpu::total_busy` bit-exactly, per host, under
//!   every DECstation placement and under injected faults;
//! * the metrics sampler observes real state (nonempty samples, gauges
//!   in registration order) without inventing events.

use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

use psd::bench::{ttcp, ApiStyle};
use psd::sim::{Cpu, FaultSite, MetricsHandle, Platform, ProfileHandle, Rng, SimTime};
use psd::systems::{SystemConfig, TestBed};

const SEED: u64 = 42;
const BYTES: usize = 1 << 20;

/// Which observability/chaos planes to attach before the run.
#[derive(Clone, Copy, Default)]
struct Attach {
    profile: bool,
    metrics: bool,
    faults: bool,
}

/// Everything a run leaves behind: the deterministic digest plus the
/// handles the assertions need.
struct RunOutcome {
    digest: String,
    profiles: Vec<(Rc<RefCell<Cpu>>, ProfileHandle)>,
    metrics: Option<MetricsHandle>,
}

/// One seeded ttcp transfer with the requested planes attached. The
/// digest covers every observable the workload produces; any
/// perturbation from an attached plane would show up in it.
fn run(config: SystemConfig, attach: Attach) -> RunOutcome {
    let mut bed = TestBed::new(config, Platform::DecStation5000_200, SEED);
    let censuses = bed.attach_census();
    if attach.faults {
        let plane = bed.attach_fault_plane();
        let mut p = plane.borrow_mut();
        // Recoverable data-path faults only: the transfer must still
        // complete so the digest is comparable across attach modes.
        p.set_rng(Rng::new(SEED.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1));
        p.arm(FaultSite::NicRx, 0.001);
        p.arm(FaultSite::WireBurstLoss, 0.0005);
        p.arm(FaultSite::ShmRing, 0.02);
    }
    let profilers = attach.profile.then(|| bed.attach_profilers());
    let metrics = attach
        .metrics
        .then(|| bed.attach_metrics(SimTime::from_millis(5)));

    let t = ttcp(&mut bed, BYTES, ApiStyle::Classic);

    let mut digest = String::new();
    writeln!(
        digest,
        "ttcp bytes={} elapsed={} kbps={:?} retransmits={}",
        t.bytes,
        t.elapsed.as_nanos(),
        t.kb_per_sec,
        t.retransmits
    )
    .unwrap();
    writeln!(
        digest,
        "sim now={} executed={}",
        bed.sim.now().as_nanos(),
        bed.sim.executed()
    )
    .unwrap();
    for (i, h) in bed.hosts.iter().enumerate() {
        writeln!(
            digest,
            "host{i} busy={} kernel={:?}",
            h.cpu.borrow().total_busy().as_nanos(),
            h.kernel.borrow().stats()
        )
        .unwrap();
    }
    for (i, c) in censuses.iter().enumerate() {
        writeln!(digest, "census{i}:\n{}", c.borrow().snapshot()).unwrap();
    }

    RunOutcome {
        digest,
        profiles: profilers
            .map(|ps| {
                bed.hosts
                    .iter()
                    .zip(ps)
                    .map(|(h, p)| (h.cpu.clone(), p))
                    .collect()
            })
            .unwrap_or_default(),
        metrics,
    }
}

/// Asserts the conservation invariant on every host of a profiled run
/// and returns the per-host attributed totals.
fn assert_conservation(outcome: &RunOutcome, context: &str) -> Vec<u64> {
    assert!(
        !outcome.profiles.is_empty(),
        "{context}: run was not profiled"
    );
    outcome
        .profiles
        .iter()
        .enumerate()
        .map(|(i, (cpu, prof))| {
            let busy = cpu.borrow().total_busy().as_nanos();
            let attributed = prof.borrow().attributed_ns();
            assert_eq!(
                attributed, busy,
                "{context} host{i}: attributed ns must equal total busy ns bit-exactly"
            );
            attributed
        })
        .collect()
}

/// All DECstation placements (the full Table 2 column).
fn placements() -> Vec<SystemConfig> {
    SystemConfig::for_platform(Platform::DecStation5000_200)
}

#[test]
fn profiler_and_metrics_are_byte_neutral_per_placement() {
    for config in placements() {
        let plain = run(config, Attach::default());
        let profiled = run(
            config,
            Attach {
                profile: true,
                ..Attach::default()
            },
        );
        let both = run(
            config,
            Attach {
                profile: true,
                metrics: true,
                faults: false,
            },
        );
        assert_eq!(
            plain.digest,
            profiled.digest,
            "{}: profiled digest diverged",
            config.label()
        );
        assert_eq!(
            plain.digest,
            both.digest,
            "{}: profiled+metered digest diverged",
            config.label()
        );
    }
}

#[test]
fn conservation_holds_under_every_placement() {
    for config in placements() {
        let outcome = run(
            config,
            Attach {
                profile: true,
                ..Attach::default()
            },
        );
        let totals = assert_conservation(&outcome, config.label());
        assert!(
            totals.iter().any(|&ns| ns > 0),
            "{}: a ttcp transfer must charge time somewhere",
            config.label()
        );
    }
}

#[test]
fn chaos_run_is_byte_neutral_and_conserved() {
    // The satellite claim: neutrality and conservation survive an
    // armed fault plane (drops, ring corruption, bursty wire loss).
    for config in [SystemConfig::LibraryShm, SystemConfig::UxServer] {
        let plain = run(
            config,
            Attach {
                faults: true,
                ..Attach::default()
            },
        );
        let profiled = run(
            config,
            Attach {
                profile: true,
                metrics: true,
                faults: true,
            },
        );
        assert_eq!(
            plain.digest,
            profiled.digest,
            "{}: chaos digest diverged under profiling",
            config.label()
        );
        assert_conservation(&profiled, config.label());
    }
}

#[test]
fn metrics_sampler_is_inert_and_observes_real_state() {
    let plain = run(SystemConfig::LibraryShm, Attach::default());
    let metered = run(
        SystemConfig::LibraryShm,
        Attach {
            metrics: true,
            ..Attach::default()
        },
    );
    assert_eq!(
        plain.digest, metered.digest,
        "metrics sampling must not perturb the run"
    );
    let metrics = metered.metrics.expect("metrics attached");
    let m = metrics.borrow();
    assert!(m.sample_count() > 0, "the sampler must actually sample");
    let names = m.gauge_names();
    assert!(
        names.iter().any(|n| n.starts_with("h0.")) && names.iter().any(|n| *n == "mbuf.hits"),
        "host and mbuf gauges registered: {names:?}"
    );
    // Virtual-time cadence: strictly increasing sample timestamps.
    let samples = m.samples();
    assert!(
        samples.windows(2).all(|w| w[0].0 < w[1].0),
        "sample timestamps must strictly increase"
    );
    // The transfer moved real data, so the rx-frame gauge must have
    // advanced between the first and last sample.
    let rx_idx = names
        .iter()
        .position(|n| *n == "h1.rx_frames")
        .expect("h1.rx_frames gauge");
    let (first, last) = (&samples[0].1, &samples[samples.len() - 1].1);
    assert!(
        last[rx_idx] > first[rx_idx],
        "rx_frames gauge must advance over a transfer: {} -> {}",
        first[rx_idx],
        last[rx_idx]
    );
}

#[test]
fn profile_export_is_deterministic_and_structured() {
    let a = run(
        SystemConfig::LibraryShmIpf,
        Attach {
            profile: true,
            ..Attach::default()
        },
    );
    let b = run(
        SystemConfig::LibraryShmIpf,
        Attach {
            profile: true,
            ..Attach::default()
        },
    );
    for ((_, pa), (_, pb)) in a.profiles.iter().zip(&b.profiles) {
        let (sa, sb) = (
            pa.borrow().collapsed_stacks(),
            pb.borrow().collapsed_stacks(),
        );
        assert_eq!(sa, sb, "same-seed collapsed stacks must be byte-identical");
        assert!(!sa.is_empty(), "a profiled transfer must produce stacks");
    }
    // The site labels wired through the kernel/netstack layers must
    // show up in the receive-host attribution. Under SHM-IPF the stack
    // runs in the library domain, so the input/tcp sites carry the
    // `library:` prefix while the interrupt path stays `kernel:rx`.
    let rx_stacks = a.profiles[1].1.borrow().collapsed_stacks();
    for needle in ["kernel:rx", "library:input", "library:tcp_input"] {
        assert!(
            rx_stacks.contains(needle),
            "expected site {needle} in receive-host stacks:\n{rx_stacks}"
        );
    }
}
