//! Control-plane behavior at Table 5 session counts (§3.2): the
//! namespace, wait, and cleanup machinery must stay correct — not just
//! fast — with thousands of live sessions.

mod common;

use common::run_until;
use psd::core::{AppLib, Fd, SelectOutcome};
use psd::filter::DemuxStrategy;
use psd::netstack::{InetAddr, SockEvent, SocketError};
use psd::server::{Proto, EPHEMERAL_FIRST, EPHEMERAL_LAST};
use psd::sim::{Platform, SimTime};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

fn lib_bed(seed: u64) -> TestBed {
    let bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, seed);
    // MPF: thousands of sessions must not make every delivered frame
    // scan thousands of programs while the test drives traffic.
    for h in &bed.hosts {
        h.kernel.borrow_mut().set_demux_strategy(DemuxStrategy::Mpf);
    }
    bed
}

/// A `select` across two thousand application-managed descriptors
/// wakes with exactly the descriptors that are ready — no misses, no
/// strays — and, per §3.2, never involves the server when every
/// watched descriptor is application-managed.
#[test]
fn select_over_thousands_wakes_exactly_the_ready_set() {
    const SESSIONS: u16 = 2000;
    const BASE: u16 = 10_000;
    let mut bed = lib_bed(811);
    let rx_app = bed.hosts[1].spawn_app();
    let mut fds: Vec<Fd> = Vec::with_capacity(SESSIONS as usize);
    for i in 0..SESSIONS {
        let fd = AppLib::socket(&rx_app, &mut bed.sim, Proto::Udp);
        AppLib::bind(&rx_app, &mut bed.sim, fd, BASE + i).expect("bind");
        fds.push(fd);
    }
    bed.settle();

    let tx_app = bed.hosts[0].spawn_app();
    let tx_fd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&tx_app, &mut bed.sim, tx_fd, 3000).expect("tx bind");
    bed.settle();
    // Warm ARP so trigger datagrams cannot drop on a cold cache.
    AppLib::sendto(
        &tx_app,
        &mut bed.sim,
        tx_fd,
        b"warm",
        Some(InetAddr::new(bed.hosts[1].ip, 9)),
    )
    .expect("warm");
    bed.settle();

    let rpcs_before = rx_app.borrow().stats.control_rpcs;
    let outcome: Rc<RefCell<Option<SelectOutcome>>> = Rc::new(RefCell::new(None));
    let o2 = outcome.clone();
    AppLib::select(
        &rx_app,
        &mut bed.sim,
        fds.clone(),
        vec![],
        Some(SimTime::from_secs(30)),
        Box::new(move |_sim, o| *o2.borrow_mut() = Some(o)),
    );
    assert!(outcome.borrow().is_none(), "nothing is ready yet");

    // Trigger five of the two thousand.
    let hit_ports = [BASE + 7, BASE + 777, BASE + 1111, BASE + 1500, BASE + 1999];
    let hit_fds: BTreeSet<Fd> = hit_ports.iter().map(|p| fds[(p - BASE) as usize]).collect();
    for p in hit_ports {
        AppLib::sendto(
            &tx_app,
            &mut bed.sim,
            tx_fd,
            b"trigger",
            Some(InetAddr::new(bed.hosts[1].ip, p)),
        )
        .expect("trigger");
    }
    assert!(run_until(&mut bed, SimTime::from_secs(30), || {
        outcome.borrow().is_some()
    }));
    let first = outcome.borrow().clone().unwrap();
    assert!(!first.timed_out);
    assert!(!first.readable.is_empty());
    for fd in &first.readable {
        assert!(
            hit_fds.contains(fd),
            "woke on a descriptor that got no data: {fd:?}"
        );
    }
    assert!(first.writable.is_empty());

    // Once everything has landed, an immediate select reports exactly
    // the triggered five out of the two thousand watched.
    bed.settle();
    let outcome: Rc<RefCell<Option<SelectOutcome>>> = Rc::new(RefCell::new(None));
    let o2 = outcome.clone();
    AppLib::select(
        &rx_app,
        &mut bed.sim,
        fds.clone(),
        vec![],
        Some(SimTime::from_secs(1)),
        Box::new(move |_sim, o| *o2.borrow_mut() = Some(o)),
    );
    assert!(run_until(&mut bed, SimTime::from_secs(5), || {
        outcome.borrow().is_some()
    }));
    let full = outcome.borrow().clone().unwrap();
    let ready: BTreeSet<Fd> = full.readable.iter().copied().collect();
    assert_eq!(ready, hit_fds, "exactly the ready set, nothing else");
    assert!(!full.timed_out);

    // "In cases where all descriptors are managed by the application,
    // the operating system is not involved" — at any scale.
    assert_eq!(
        rx_app.borrow().stats.control_rpcs,
        rpcs_before,
        "local-only selects must not call the server"
    );
}

/// Driving the ephemeral allocator to exhaustion through the real
/// connect path: every port in the BSD range is handed out exactly
/// once, the first allocation past the end fails with the typed
/// `NoBufs` error (not a panic, not a wrong port), and releasing one
/// port makes exactly that port allocatable again.
#[test]
fn ephemeral_exhaustion_is_typed_and_ports_are_reclaimed() {
    let mut bed = lib_bed(821);
    let app = bed.hosts[0].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, 7777);
    let span = (EPHEMERAL_LAST - EPHEMERAL_FIRST) as usize + 1;
    let server = bed.hosts[0].server.as_ref().unwrap().clone();
    let already = server.borrow().ports().len();

    // Connect-without-bind claims one ephemeral UDP port per session.
    // (The migrated session's local address is visible once the
    // migration events have run, hence the settle before reading it.)
    let mut fds = Vec::with_capacity(span);
    for _ in 0..span - already {
        let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
        AppLib::connect(&app, &mut bed.sim, fd, dst).expect("connect");
        fds.push((fd, 0u16));
    }
    bed.settle();
    let mut seen = BTreeSet::new();
    for (fd, port) in &mut fds {
        *port = app.borrow().local_addr(*fd).expect("migrated").port;
        assert!((EPHEMERAL_FIRST..=EPHEMERAL_LAST).contains(port));
        assert!(seen.insert(*port), "ephemeral port {port} handed out twice");
    }
    assert_eq!(server.borrow().ports().len(), span, "range fully claimed");

    // One more is a typed failure. The library connect call itself is
    // asynchronous (it returns Ok and reports the RPC outcome through
    // the descriptor's event handler), so the error arrives as a
    // `SockEvent::Error` — typed, not a panic, not a wrong port.
    let extra = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    let err: Rc<RefCell<Option<SocketError>>> = Rc::new(RefCell::new(None));
    let e2 = err.clone();
    let handler: psd::core::FdEventFn = Rc::new(RefCell::new(
        move |_sim: &mut psd::sim::Sim, _fd: Fd, ev: SockEvent| {
            if let SockEvent::Error(e) = ev {
                *e2.borrow_mut() = Some(e);
            }
        },
    ));
    app.borrow_mut().set_event_handler(extra, handler);
    AppLib::connect(&app, &mut bed.sim, extra, dst).expect("async connect call");
    bed.settle();
    assert_eq!(
        *err.borrow(),
        Some(SocketError::NoBufs),
        "exhaustion must surface as NoBufs"
    );

    // Releasing one port un-wedges exactly that port.
    let (victim_fd, victim_port) = fds[fds.len() / 2];
    AppLib::close(&app, &mut bed.sim, victim_fd);
    bed.settle();
    assert!(
        !server.borrow().ports().in_use(Proto::Udp, victim_port),
        "close must release the session's ephemeral port"
    );
    AppLib::connect(&app, &mut bed.sim, extra, dst).expect("reclaim after release");
    bed.settle();
    assert_eq!(
        app.borrow().local_addr(extra).expect("migrated").port,
        victim_port,
        "the released port is the only free one, so it must be reused"
    );
}

/// Abrupt death of a process holding a thousand live sessions (mixed
/// wildcard and connected) leaks nothing: the server's session table,
/// the port namespace, and the kernel filter table all return to their
/// pre-process state (§3.2 "unexpected shutdown").
#[test]
fn process_death_with_1k_sessions_leaks_nothing() {
    let mut bed = lib_bed(831);
    let host = &bed.hosts[0];
    let server = host.server.as_ref().unwrap().clone();
    let kernel = host.kernel.clone();
    let base_sessions = server.borrow().session_count();
    let base_ports = server.borrow().ports().len();
    let base_filters = kernel.borrow().filters_installed();

    let app = bed.hosts[0].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, 7777);
    for i in 0..1000u16 {
        let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
        if i % 4 == 3 {
            AppLib::connect(&app, &mut bed.sim, fd, dst).expect("connect");
        } else {
            AppLib::bind(&app, &mut bed.sim, fd, 20_000 + i).expect("bind");
        }
    }
    bed.settle();
    assert!(
        server.borrow().session_count() >= base_sessions + 1000,
        "sessions stood up"
    );
    assert!(server.borrow().ports().len() >= base_ports + 1000);
    assert!(kernel.borrow().filters_installed() >= base_filters + 1000);

    AppLib::die(&app, &mut bed.sim);
    bed.settle();
    assert_eq!(
        server.borrow().session_count(),
        base_sessions,
        "session table must return to its pre-process size"
    );
    assert_eq!(
        server.borrow().ports().len(),
        base_ports,
        "every port claim must be released"
    );
    assert_eq!(
        kernel.borrow().filters_installed(),
        base_filters,
        "every session filter must be uninstalled"
    );
}
