//! GRO / GSO property tests (the coalescing and segmentation rules).
//!
//! GRO's admission rules are load-bearing for correctness, not just
//! cost: a merge across flows or sequence gaps would corrupt a TCP
//! stream, a merge across a flag-bearing segment would lose PSH/FIN/RST
//! semantics, and a descriptor grown past the ring-slot bound
//! ([`GRO_MAX_FRAME`]) could not be delivered. These tests pin each
//! rule at the kernel ingress with hand-built frames, then fuzz the
//! whole admission automaton against an independent model: a seeded
//! adversarial generator (mixed flows, gaps, flag-bearing segments,
//! oversize runs) drives the kernel while the test replays the written
//! rules and predicts the exact delivered framing — payload bytes,
//! boundaries, and order.
//!
//! GSO's contract is byte-identity: `udp_send_gso` must put *exactly*
//! the frames on the wire that per-datagram sends would, so a receiver
//! cannot tell whether the sender segmented in the stack or above it.
//! Two stacks run the same transfer — one through the GSO path, one
//! through per-datagram sends — and the recorded wire logs (ARP
//! included) must match frame for frame, byte for byte, across a
//! seeded sweep of lengths and segment sizes.

use psd::filter::EndpointSpec;
use psd::kernel::{BatchConfig, Kernel, KernelHandle, PacketSink, RxMode, GRO_MAX_FRAME};
use psd::netdev::{Ethernet, EthernetHandle};
use psd::netstack::{InetAddr, NetIf, NetStack, Placement, RouteTable, StackHandle};
use psd::sim::{Charge, CostModel, Cpu, Rng, Sim, SimTime};
use psd::wire::{
    EtherAddr, EtherType, EthernetHeader, IpProto, Ipv4Header, TcpFlags, TcpHeader, ETHER_HDR_LEN,
    IPV4_HDR_LEN,
};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const PORT: u16 = 7;

/// Runs `body` for `n` deterministic cases, each with its own forked
/// stream. The per-case seed appears in panic messages.
fn cases(base_seed: u64, n: u32, mut body: impl FnMut(&mut Rng)) {
    let mut root = Rng::new(base_seed);
    for case in 0..n {
        let seed = root.next_u64();
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

// ---------------------------------------------------------------------
// Kernel-ingress rig
// ---------------------------------------------------------------------

struct Rig {
    sim: Sim,
    ether: EthernetHandle,
    kernel: KernelHandle,
}

/// One kernel on a 10 Mbit segment, reachable at `EtherAddr::local(2)`.
fn rig() -> Rig {
    let mut sim = Sim::new(1);
    let ether = Ethernet::ten_megabit(&mut sim);
    let cpu = Rc::new(RefCell::new(Cpu::new()));
    let kernel = Kernel::new(CostModel::decstation_5000_200(), cpu, EtherAddr::local(2));
    Kernel::connect(&kernel, &ether);
    Rig { sim, ether, kernel }
}

type DeliveryLog = Rc<RefCell<Vec<Vec<u8>>>>;

fn collect_sink() -> (PacketSink, DeliveryLog) {
    let log: DeliveryLog = Rc::new(RefCell::new(Vec::new()));
    let l2 = log.clone();
    let sink: PacketSink = Rc::new(RefCell::new(move |_: &mut Sim, _: SimTime, f: Vec<u8>| {
        l2.borrow_mut().push(f);
    }));
    (sink, log)
}

/// Installs one unconnected TCP endpoint on `PORT` with GRO enabled at
/// window `batch`, returning its delivery log.
fn gro_rig(batch: usize) -> (Rig, DeliveryLog) {
    let r = rig();
    let (sink, log) = collect_sink();
    {
        let mut k = r.kernel.borrow_mut();
        k.set_batch_config(BatchConfig::full(batch));
        let ep = k.create_endpoint(RxMode::Shm, sink);
        k.install_filter(EndpointSpec::unconnected(IpProto::Tcp, B_IP, PORT), ep)
            .unwrap();
    }
    (r, log)
}

/// A checksummed TCP frame addressed to the rig's kernel. The flow is
/// keyed by `src_port`.
fn tcp_frame(src_port: u16, seq: u32, flags: TcpFlags, payload: &[u8]) -> Vec<u8> {
    let tcp = TcpHeader {
        src_port,
        dst_port: PORT,
        seq,
        ack: 1,
        flags,
        window: 8192,
        urgent: 0,
        mss: None,
    };
    let ip = Ipv4Header::new(A_IP, B_IP, IpProto::Tcp, tcp.header_len() + payload.len());
    let tcp_bytes = tcp.encode_with_checksum(&ip, payload.len(), std::iter::once(payload));
    let eth = EthernetHeader {
        dst: EtherAddr::local(2),
        src: EtherAddr::local(1),
        ethertype: EtherType::Ipv4,
    };
    let mut f = eth.encode().to_vec();
    f.extend_from_slice(&ip.encode());
    f.extend_from_slice(&tcp_bytes);
    f.extend_from_slice(payload);
    f
}

/// Parses a delivered frame back into `(src_port, seq, payload)`,
/// verifying the transport checksum — synthesized GRO frames must be
/// indistinguishable from well-formed wire frames.
fn parse_delivery(frame: &[u8]) -> (u16, u32, Vec<u8>) {
    let ip = Ipv4Header::parse(&frame[ETHER_HDR_LEN..]).expect("delivered frame has valid IP");
    let tp = &frame[ETHER_HDR_LEN + IPV4_HDR_LEN..ETHER_HDR_LEN + ip.total_len as usize];
    let (tcp, thl) = TcpHeader::parse(tp).expect("delivered frame has valid TCP");
    let payload = &tp[thl..];
    assert!(
        TcpHeader::verify(&ip, &tp[..thl], payload.len(), std::iter::once(payload)),
        "delivered frame fails its transport checksum"
    );
    (tcp.src_port, tcp.seq, payload.to_vec())
}

fn transmit_all(r: &mut Rig, frames: Vec<Vec<u8>>) {
    for f in frames {
        let now = r.sim.now();
        Ethernet::transmit(&r.ether, &mut r.sim, now, f);
    }
    r.sim.run_to_idle();
}

// ---------------------------------------------------------------------
// Single-rule pins
// ---------------------------------------------------------------------

#[test]
fn gro_never_merges_across_flows() {
    // Two flows interleave on the same endpoint (an unconnected filter
    // accepts both); their consecutive-looking sequence numbers must
    // not tempt a merge.
    let (mut r, log) = gro_rig(8);
    transmit_all(
        &mut r,
        vec![
            tcp_frame(5555, 1000, TcpFlags::ACK, &[0x11; 100]),
            tcp_frame(6666, 1100, TcpFlags::ACK, &[0x22; 100]),
        ],
    );
    assert_eq!(r.kernel.borrow().stats().gro_merged, 0);
    let log = log.borrow();
    assert_eq!(log.len(), 2, "one descriptor per flow");
    assert_eq!(parse_delivery(&log[0]), (5555, 1000, vec![0x11; 100]));
    assert_eq!(parse_delivery(&log[1]), (6666, 1100, vec![0x22; 100]));
}

#[test]
fn gro_never_merges_across_sequence_gaps() {
    let (mut r, log) = gro_rig(8);
    transmit_all(
        &mut r,
        vec![
            tcp_frame(5555, 1000, TcpFlags::ACK, &[0x11; 100]),
            // 1100 would be mergeable; 1101 is a hole.
            tcp_frame(5555, 1101, TcpFlags::ACK, &[0x22; 100]),
        ],
    );
    assert_eq!(r.kernel.borrow().stats().gro_merged, 0);
    let log = log.borrow();
    assert_eq!(log.len(), 2, "a hole forbids coalescing");
    assert_eq!(parse_delivery(&log[0]), (5555, 1000, vec![0x11; 100]));
    assert_eq!(parse_delivery(&log[1]), (5555, 1101, vec![0x22; 100]));
}

#[test]
fn gro_never_merges_flag_bearing_segments() {
    // PSH/FIN/RST/urgent segments carry edge semantics a receiver must
    // see framed exactly as sent; each flushes the held run and passes
    // through unmerged.
    for flags in [
        TcpFlags::ACK | TcpFlags::PSH,
        TcpFlags::ACK | TcpFlags::FIN,
        TcpFlags::ACK | TcpFlags::RST,
        TcpFlags::ACK | TcpFlags::SYN,
    ] {
        let (mut r, log) = gro_rig(8);
        transmit_all(
            &mut r,
            vec![
                tcp_frame(5555, 1000, TcpFlags::ACK, &[0x11; 100]),
                tcp_frame(5555, 1100, flags, &[0x22; 100]),
            ],
        );
        assert_eq!(
            r.kernel.borrow().stats().gro_merged,
            0,
            "flags {flags:?} must not merge"
        );
        let log = log.borrow();
        assert_eq!(log.len(), 2);
        let (_, seq, payload) = parse_delivery(&log[1]);
        assert_eq!((seq, payload), (1100, vec![0x22; 100]));
    }
}

#[test]
fn gro_never_grows_a_descriptor_past_the_ring_slot() {
    // The exact boundary: headers (14 + 20 + 20) plus merged payload
    // must stay ≤ GRO_MAX_FRAME. One byte more and the run closes.
    let hdr = ETHER_HDR_LEN + IPV4_HDR_LEN + 20;
    let p1 = 2000usize;
    let fits = GRO_MAX_FRAME - hdr - p1;
    for (p2, merges) in [(fits, true), (fits + 1, false)] {
        let (mut r, log) = gro_rig(8);
        transmit_all(
            &mut r,
            vec![
                tcp_frame(5555, 1000, TcpFlags::ACK, &vec![0x11; p1]),
                tcp_frame(5555, 1000 + p1 as u32, TcpFlags::ACK, &vec![0x22; p2]),
            ],
        );
        let stats = r.kernel.borrow().stats();
        let log = log.borrow();
        if merges {
            assert_eq!(stats.gro_merged, 1, "exactly at the bound must merge");
            assert_eq!(log.len(), 1);
            assert_eq!(log[0].len(), GRO_MAX_FRAME, "descriptor fills the slot");
        } else {
            assert_eq!(stats.gro_merged, 0, "one past the bound must not merge");
            assert_eq!(log.len(), 2);
        }
    }
}

#[test]
fn gro_size_cap_holds_for_full_mss_segments() {
    // Realistic framing: two 1460-byte MSS segments coalesce (2974
    // bytes framed), a third would overflow the slot and starts a new
    // run instead.
    let (mut r, log) = gro_rig(8);
    let mss = 1460usize;
    transmit_all(
        &mut r,
        (0..3)
            .map(|i| {
                tcp_frame(
                    5555,
                    1000 + (i * mss) as u32,
                    TcpFlags::ACK,
                    &vec![i as u8; mss],
                )
            })
            .collect(),
    );
    let stats = r.kernel.borrow().stats();
    assert_eq!(stats.gro_merged, 1, "exactly one merge");
    let log = log.borrow();
    assert_eq!(log.len(), 2, "two descriptors for three segments");
    let (_, seq0, pay0) = parse_delivery(&log[0]);
    assert_eq!((seq0, pay0.len()), (1000, 2 * mss));
    let (_, seq1, pay1) = parse_delivery(&log[1]);
    assert_eq!((seq1, pay1.len()), (1000 + 2 * mss as u32, mss));
}

// ---------------------------------------------------------------------
// Model-based fuzz: the admission automaton
// ---------------------------------------------------------------------

/// One generated segment.
#[derive(Clone)]
struct Seg {
    src_port: u16,
    seq: u32,
    flags: TcpFlags,
    payload: Vec<u8>,
}

/// Replays the written GRO rules over `segs` and predicts the exact
/// delivered framing: `(src_port, seq, payload)` per descriptor, in
/// order. This is an independent reimplementation of the admission
/// automaton — any divergence is a bug in one of them.
fn model_gro(segs: &[Seg], batch: usize) -> Vec<(u16, u32, Vec<u8>)> {
    struct Slot {
        src_port: u16,
        seq: u32,
        next_seq: u32,
        payload: Vec<u8>,
        count: usize,
    }
    let hdr = ETHER_HDR_LEN + IPV4_HDR_LEN + 20;
    let mut out = Vec::new();
    let mut slot: Option<Slot> = None;
    for s in segs {
        let eligible = s.flags == TcpFlags::ACK && !s.payload.is_empty();
        if !eligible {
            if let Some(h) = slot.take() {
                out.push((h.src_port, h.seq, h.payload));
            }
            out.push((s.src_port, s.seq, s.payload.clone()));
            continue;
        }
        let fits = slot.as_ref().is_some_and(|h| {
            h.src_port == s.src_port
                && s.seq == h.next_seq
                && h.count < batch
                && hdr + h.payload.len() + s.payload.len() <= GRO_MAX_FRAME
        });
        if fits {
            let h = slot.as_mut().expect("checked");
            h.payload.extend_from_slice(&s.payload);
            h.next_seq = h.next_seq.wrapping_add(s.payload.len() as u32);
            h.count += 1;
            if h.count >= batch {
                let h = slot.take().expect("held");
                out.push((h.src_port, h.seq, h.payload));
            }
            continue;
        }
        if let Some(h) = slot.take() {
            out.push((h.src_port, h.seq, h.payload));
        }
        slot = Some(Slot {
            src_port: s.src_port,
            seq: s.seq,
            next_seq: s.seq.wrapping_add(s.payload.len() as u32),
            payload: s.payload.clone(),
            count: 1,
        });
    }
    if let Some(h) = slot.take() {
        out.push((h.src_port, h.seq, h.payload));
    }
    out
}

/// Generates an adversarial segment stream: two flows, mostly in-order
/// pure-ACK data with a tail of gaps, flag-bearing segments, and
/// cross-flow interleavings. Payloads stay small so wire serialization
/// (≤ ~0.2 ms/frame over ≤ 8 frames) never outruns the 2 ms GRO
/// deadline — the deadline is deliberately out of model scope.
fn gen_segs(rng: &mut Rng) -> Vec<Seg> {
    let n = rng.range(2, 9) as usize;
    let mut next_seq = [1_000u32, 50_000u32];
    let mut segs = Vec::new();
    for _ in 0..n {
        let flow = usize::from(rng.chance(0.3));
        let src_port = [5555u16, 6666][flow];
        let len = rng.range(1, 151) as usize;
        let seq = if rng.chance(0.8) {
            next_seq[flow]
        } else {
            next_seq[flow].wrapping_add(rng.range(1, 500) as u32)
        };
        let flags = if rng.chance(0.8) {
            TcpFlags::ACK
        } else {
            [
                TcpFlags::ACK | TcpFlags::PSH,
                TcpFlags::ACK | TcpFlags::FIN,
                TcpFlags::ACK | TcpFlags::RST,
            ][rng.below(3) as usize]
        };
        let fill = rng.next_u64() as u8;
        segs.push(Seg {
            src_port,
            seq,
            flags,
            payload: vec![fill; len],
        });
        next_seq[flow] = seq.wrapping_add(len as u32);
    }
    segs
}

#[test]
fn gro_admission_matches_model_under_fuzz() {
    let (mut merges, mut singles, mut rejects) = (0u64, 0u64, 0u64);
    cases(0x6120_0993, 300, |rng| {
        let batch = rng.range(2, 6) as usize;
        let segs = gen_segs(rng);
        let want = model_gro(&segs, batch);

        let (mut r, log) = gro_rig(batch);
        transmit_all(
            &mut r,
            segs.iter()
                .map(|s| tcp_frame(s.src_port, s.seq, s.flags, &s.payload))
                .collect(),
        );
        let got: Vec<(u16, u32, Vec<u8>)> =
            log.borrow().iter().map(|f| parse_delivery(f)).collect();
        assert_eq!(
            got.len(),
            want.len(),
            "descriptor framing diverged from the model"
        );
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g, w, "descriptor content diverged from the model");
        }

        let stats = r.kernel.borrow().stats();
        merges += stats.gro_merged;
        if want.len() == segs.len() {
            singles += 1;
        }
        rejects += segs.iter().filter(|s| s.flags != TcpFlags::ACK).count() as u64;
    });
    // Vacuity: the corpus exercised merges, merge-free streams, and
    // flag rejections.
    assert!(merges > 0, "fuzz corpus never merged");
    assert!(singles > 0, "fuzz corpus never produced a merge-free run");
    assert!(
        rejects > 0,
        "fuzz corpus never generated flag-bearing segments"
    );
}

// ---------------------------------------------------------------------
// GSO byte-identity
// ---------------------------------------------------------------------

/// A point-to-point wire that records every frame the A-side stack
/// transmits (ARP included) and forwards it to the peer.
struct RecordIf {
    mac: EtherAddr,
    peer: RefCell<Option<StackHandle>>,
    log: Option<DeliveryLog>,
    delay: SimTime,
}

impl NetIf for RecordIf {
    fn mac(&self) -> EtherAddr {
        self.mac
    }

    fn transmit(&self, sim: &mut Sim, charge: &mut Charge, frame: Vec<u8>) {
        if let Some(log) = &self.log {
            log.borrow_mut().push(frame.clone());
        }
        let Some(peer) = self.peer.borrow().clone() else {
            return;
        };
        let at = charge.at() + self.delay;
        sim.at(at, move |sim| {
            let cpu = peer.borrow().cpu();
            let now = sim.now();
            let mut ch = cpu.borrow_mut().begin(now);
            peer.borrow_mut().input_frame(sim, &mut ch, &frame);
            cpu.borrow_mut().finish(ch);
        });
    }
}

/// Two kernel-placement stacks joined by a recording wire; returns the
/// A-side stack, its transmit log, and the sim.
fn stack_pair() -> (Sim, StackHandle, StackHandle, DeliveryLog) {
    let sim = Sim::new(7);
    let costs = CostModel::decstation_5000_200();
    let a = NetStack::new(
        Placement::Kernel,
        costs.clone(),
        Rc::new(RefCell::new(Cpu::new())),
        A_IP,
    );
    let b = NetStack::new(
        Placement::Kernel,
        costs,
        Rc::new(RefCell::new(Cpu::new())),
        B_IP,
    );
    let log: DeliveryLog = Rc::new(RefCell::new(Vec::new()));
    let ifa = Rc::new(RecordIf {
        mac: EtherAddr::local(1),
        peer: RefCell::new(Some(b.clone())),
        log: Some(log.clone()),
        delay: SimTime::from_micros(120),
    });
    let ifb = Rc::new(RecordIf {
        mac: EtherAddr::local(2),
        peer: RefCell::new(Some(a.clone())),
        log: None,
        delay: SimTime::from_micros(120),
    });
    a.borrow_mut().set_ifnet(ifa);
    b.borrow_mut().set_ifnet(ifb);
    for s in [&a, &b] {
        s.borrow_mut().routes = RouteTable::directly_attached(
            Ipv4Addr::new(10, 0, 0, 0),
            Ipv4Addr::new(255, 255, 255, 0),
        );
    }
    (sim, a, b, log)
}

fn with_charge<R>(
    sim: &mut Sim,
    stack: &StackHandle,
    f: impl FnOnce(&mut NetStack, &mut Sim, &mut Charge) -> R,
) -> R {
    let cpu = stack.borrow().cpu();
    let now = sim.now();
    let mut charge = cpu.borrow_mut().begin(now);
    let r = f(&mut stack.borrow_mut(), sim, &mut charge);
    cpu.borrow_mut().finish(charge);
    r
}

/// Runs one `len`-byte transfer segmented at `seg` and returns the
/// A-side wire log; `gso` selects the super-descriptor path or the
/// equivalent per-datagram sends.
fn gso_wire_log(len: usize, seg: usize, data: &Rc<Vec<u8>>, gso: bool) -> Vec<Vec<u8>> {
    let (mut sim, a, b, log) = stack_pair();
    let sa = with_charge(&mut sim, &a, |s, _, _| s.socket_udp());
    let sb = with_charge(&mut sim, &b, |s, _, _| s.socket_udp());
    with_charge(&mut sim, &a, |s, _, _| {
        s.bind(sa, InetAddr::new(A_IP, 4000)).expect("bind a");
        s.connect_udp(sa, InetAddr::new(B_IP, 5000))
            .expect("connect")
    });
    with_charge(&mut sim, &b, |s, _, _| {
        s.bind(sb, InetAddr::new(B_IP, 5000)).expect("bind b")
    });
    if gso {
        with_charge(&mut sim, &a, |s, sim, ch| {
            s.udp_send_gso(sim, ch, sa, data, seg, None)
                .expect("gso send")
        });
    } else {
        with_charge(&mut sim, &a, |s, sim, ch| {
            let mut off = 0;
            while off < len {
                let n = seg.min(len - off);
                s.udp_send(sim, ch, sa, &data[off..off + n], None)
                    .expect("plain send");
                off += n;
            }
        });
    }
    sim.run_to_idle();
    let frames = log.borrow().clone();
    frames
}

#[test]
fn gso_wire_frames_are_byte_identical_to_per_datagram_sends() {
    let mut rng = Rng::new(0x650);
    let data: Rc<Vec<u8>> = Rc::new((0..3000).map(|_| rng.next_u64() as u8).collect());
    let gso = gso_wire_log(data.len(), 700, &data, true);
    let plain = gso_wire_log(data.len(), 700, &data, false);
    assert_eq!(gso.len(), plain.len(), "wire frame counts differ");
    // 3000 / 700 → four full segments and a 200-byte tail, plus ARP.
    assert!(gso.len() >= 5, "segmentation produced too few frames");
    for (i, (g, p)) in gso.iter().zip(&plain).enumerate() {
        assert_eq!(g, p, "wire frame {i} differs between GSO and per-datagram");
    }
}

#[test]
fn gso_byte_identity_holds_under_fuzz() {
    cases(0x650F, 40, |rng| {
        let len = rng.range(1, 4001) as usize;
        let seg = rng.range(1, 901) as usize;
        let fill = rng.next_u64() as u8;
        let data = Rc::new(vec![fill; len]);
        let gso = gso_wire_log(len, seg, &data, true);
        let plain = gso_wire_log(len, seg, &data, false);
        assert_eq!(
            gso.len(),
            plain.len(),
            "len={len} seg={seg}: frame counts differ"
        );
        for (i, (g, p)) in gso.iter().zip(&plain).enumerate() {
            assert_eq!(g, p, "len={len} seg={seg}: frame {i} differs");
        }
        // Vacuity: the case really segmented when len > seg.
        if len > seg {
            assert!(gso.len() > 1, "len={len} seg={seg}: no segmentation");
        }
    });
}
