//! Session migration under adversity: mid-stream migration, crash
//! cleanup, stray-segment suppression, and loss recovery across the
//! full decomposed system.

mod common;

use common::{run_until, tcp_client, tcp_echo_server};
use psd::core::AppLib;
use psd::netstack::InetAddr;
use psd::server::Proto;
use psd::sim::{Platform, SimTime};
use psd::systems::{SystemConfig, TestBed};

#[test]
fn tcp_transfer_survives_frame_loss_in_library_mode() {
    // 5% loss on the wire; the transfer must still complete exactly.
    let mut bed = TestBed::new(
        SystemConfig::LibraryShmIpf,
        Platform::DecStation5000_200,
        31,
    );
    bed.arm_wire_faults(31, 0.05, 0.0, 0.0);
    let server_app = bed.hosts[1].spawn_app();
    let echoed = tcp_echo_server(&mut bed, &server_app, 80);
    let client_app = bed.hosts[0].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = tcp_client(&mut bed, &client_app, dst);
    assert!(run_until(&mut bed, SimTime::from_secs(60), || {
        *client.connected.borrow()
    }));
    // Send 64 KB through the lossy wire in 4 KB pieces.
    let total = 64 * 1024;
    let mut sent = 0;
    let mut guard = 0;
    while sent < total {
        guard += 1;
        assert!(guard < 10_000, "stalled at {sent}");
        if let Ok(n) = AppLib::send(&client_app, &mut bed.sim, client.fd, &vec![7u8; 4096]) {
            sent += n
        }
        bed.run_for(SimTime::from_millis(50));
    }
    assert!(
        run_until(&mut bed, SimTime::from_secs(300), || {
            client.replies.borrow().len() >= total
        }),
        "echo incomplete: {} of {total}",
        client.replies.borrow().len()
    );
    assert_eq!(*echoed.borrow(), total);
    assert!(
        bed.ether.borrow().stats().dropped > 0,
        "the fault injector must actually have dropped frames"
    );
    // Retransmissions happened in the *application's* stack.
    let rexmt = client_app
        .borrow()
        .stack()
        .map(|s| s.borrow().stats.tcp_rexmt)
        .unwrap_or(0);
    let srv_rexmt = server_app
        .borrow()
        .stack()
        .map(|s| s.borrow().stats.tcp_rexmt)
        .unwrap_or(0);
    assert!(rexmt + srv_rexmt > 0, "loss must cause retransmissions");
}

#[test]
fn reordering_and_duplication_do_not_corrupt_the_stream() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 37);
    bed.arm_wire_faults(37, 0.0, 0.05, 0.05);
    bed.ether
        .borrow_mut()
        .set_reorder_delay(SimTime::from_millis(3));
    let server_app = bed.hosts[1].spawn_app();
    tcp_echo_server(&mut bed, &server_app, 80);
    let client_app = bed.hosts[0].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = tcp_client(&mut bed, &client_app, dst);
    assert!(run_until(&mut bed, SimTime::from_secs(60), || {
        *client.connected.borrow()
    }));
    let pattern: Vec<u8> = (0..32 * 1024u32).map(|i| (i % 239) as u8).collect();
    let mut sent = 0;
    let mut guard = 0;
    while sent < pattern.len() {
        guard += 1;
        assert!(guard < 10_000);
        if let Ok(n) = AppLib::send(&client_app, &mut bed.sim, client.fd, &pattern[sent..]) {
            sent += n
        }
        bed.run_for(SimTime::from_millis(50));
    }
    assert!(run_until(&mut bed, SimTime::from_secs(300), || {
        client.replies.borrow().len() >= pattern.len()
    }));
    assert_eq!(
        client.replies.borrow().as_slice(),
        pattern.as_slice(),
        "exactly-once in-order delivery violated"
    );
}

#[test]
fn process_death_cleans_up_sessions_ports_and_filters() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 41);
    let server_app = bed.hosts[1].spawn_app();
    tcp_echo_server(&mut bed, &server_app, 80);
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = tcp_client(&mut bed, &client_app, dst);
    assert!(run_until(&mut bed, SimTime::from_secs(10), || {
        *client.connected.borrow()
    }));
    let sessions_before = os.borrow().session_count();
    assert!(sessions_before > 0);

    // The process dies without closing anything ("unexpected shutdown").
    AppLib::die(&client_app, &mut bed.sim);
    bed.settle();
    assert!(os.borrow().stats.crash_cleanups >= 1);
    assert!(os.borrow().session_count() < sessions_before);
    // New processes can immediately reuse the host's resources: a fresh
    // connect on the same quad works.
    let fresh_app = bed.hosts[0].spawn_app();
    let fresh = tcp_client(&mut bed, &fresh_app, dst);
    assert!(
        run_until(&mut bed, SimTime::from_secs(30), || {
            *fresh.connected.borrow()
        }),
        "fresh connection after crash must establish"
    );
}

#[test]
fn stray_segments_after_migration_do_not_reset_live_sessions() {
    // Establish a connection (migrating it into the client app); then
    // let the peer keep talking. Any stragglers that reach the server's
    // catch-all must be suppressed, not RST.
    let mut bed = TestBed::new(SystemConfig::LibraryIpc, Platform::DecStation5000_200, 43);
    let server_app = bed.hosts[1].spawn_app();
    tcp_echo_server(&mut bed, &server_app, 80);
    let client_app = bed.hosts[0].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = tcp_client(&mut bed, &client_app, dst);
    assert!(run_until(&mut bed, SimTime::from_secs(10), || {
        *client.connected.borrow()
    }));
    for _ in 0..5 {
        AppLib::send(&client_app, &mut bed.sim, client.fd, b"chatter").unwrap();
        bed.run_for(SimTime::from_millis(200));
    }
    bed.settle();
    assert_eq!(
        *client.error.borrow(),
        None,
        "live migrated session must not be reset"
    );
    assert_eq!(client.replies.borrow().len(), 35);
}

#[test]
fn udp_session_migrates_with_queued_datagrams() {
    // Datagrams that arrive between bind-at-server and pickup must not
    // be lost: they travel inside the migration capsule.
    let mut bed = TestBed::new(SystemConfig::UxServer, Platform::DecStation5000_200, 47);
    // Server-based receiver (stays in the server).
    let recv_app = bed.hosts[1].spawn_app();
    let rfd = AppLib::socket(&recv_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&recv_app, &mut bed.sim, rfd, 5000).unwrap();
    // Sender from the other host.
    let send_app = bed.hosts[0].spawn_app();
    let sfd = AppLib::socket(&send_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&send_app, &mut bed.sim, sfd, 5001).unwrap();
    bed.settle();
    AppLib::sendto(
        &send_app,
        &mut bed.sim,
        sfd,
        b"queued before read",
        Some(InetAddr::new(bed.hosts[1].ip, 5000)),
    )
    .unwrap();
    bed.settle();
    let mut buf = [0u8; 64];
    let (n, from) = AppLib::recvfrom(&recv_app, &mut bed.sim, rfd, &mut buf).expect("delivered");
    assert_eq!(&buf[..n], b"queued before read");
    assert_eq!(from, InetAddr::new(bed.hosts[0].ip, 5001));
}

#[test]
fn datagrams_in_flight_across_fork_retarget_arrive_exactly_once() {
    // fork(2) returns every migrated session to the operating system,
    // retargeting its packet filter from the application's endpoint
    // back to the server — with datagrams still on the wire. Each
    // numbered datagram must surface exactly once: the capsule carries
    // what the library had queued, the retargeted filter catches the
    // rest, and nothing is delivered twice.
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 59);
    let recv_app = bed.hosts[1].spawn_app();
    let rfd = AppLib::socket(&recv_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&recv_app, &mut bed.sim, rfd, 5000).unwrap();
    let send_app = bed.hosts[0].spawn_app();
    let sfd = AppLib::socket(&send_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&send_app, &mut bed.sim, sfd, 5001).unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 5000);
    // Warm up ARP (the first library datagram drops on a miss).
    let mut warmed = false;
    for _ in 0..20 {
        AppLib::sendto(&send_app, &mut bed.sim, sfd, b"warmup", Some(dst)).unwrap();
        bed.run_for(SimTime::from_millis(200));
        let mut buf = [0u8; 64];
        if AppLib::recvfrom(&recv_app, &mut bed.sim, rfd, &mut buf).is_ok() {
            warmed = true;
            break;
        }
    }
    assert!(warmed, "warm-up datagram never arrived");
    bed.settle();

    // First half: delivered into the library-resident session, left
    // queued (no drain handler), with the last few still in flight
    // when fork runs.
    let n = 12u8;
    for i in 0..n / 2 {
        AppLib::sendto(&send_app, &mut bed.sim, sfd, &[i], Some(dst)).unwrap();
    }
    bed.run_for(SimTime::from_millis(1)); // some frames still on the wire
    let child = AppLib::fork(&recv_app, &mut bed.sim).expect("fork");
    assert!(
        recv_app.borrow().stats.migrations_out >= 1,
        "fork must have returned the bound session to the server"
    );
    // Second half: lands after the filter points back at the server.
    for i in n / 2..n {
        AppLib::sendto(&send_app, &mut bed.sim, sfd, &[i], Some(dst)).unwrap();
    }
    bed.settle();

    // Drain through the now server-resident session.
    let mut seen = vec![0u32; n as usize];
    let mut buf = [0u8; 64];
    while let Ok((len, from)) = AppLib::recvfrom(&recv_app, &mut bed.sim, rfd, &mut buf) {
        assert_eq!(from, InetAddr::new(bed.hosts[0].ip, 5001));
        assert_eq!(len, 1);
        seen[buf[0] as usize] += 1;
    }
    assert_eq!(
        seen,
        vec![1u32; n as usize],
        "every datagram exactly once across the retarget"
    );
    // The shared descriptor reaches the same (now empty) session from
    // the child too.
    assert!(AppLib::recvfrom(&child, &mut bed.sim, rfd, &mut buf).is_err());
}

#[test]
fn death_mid_migration_returns_resources_to_the_server() {
    // A process that dies while it holds migrated sessions — including
    // one whose TCP handshake is still in flight — must leave the
    // operating system consistent: sessions reclaimed, ports free,
    // fresh processes able to reuse them immediately.
    let mut bed = TestBed::new(
        SystemConfig::LibraryShmIpf,
        Platform::DecStation5000_200,
        61,
    );
    let server_app = bed.hosts[1].spawn_app();
    tcp_echo_server(&mut bed, &server_app, 80);
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);

    let doomed = bed.hosts[0].spawn_app();
    // A migrated UDP session holding a well-known port…
    let ufd = AppLib::socket(&doomed, &mut bed.sim, Proto::Udp);
    AppLib::bind(&doomed, &mut bed.sim, ufd, 6000).unwrap();
    assert!(os.borrow().ports().in_use(Proto::Udp, 6000));
    // …and a TCP connect abandoned mid-handshake: die before the SYN
    // round trip completes, so the session is still migrating.
    let tfd = AppLib::socket(&doomed, &mut bed.sim, Proto::Tcp);
    AppLib::connect(&doomed, &mut bed.sim, tfd, dst).unwrap();
    let sessions_before = os.borrow().session_count();
    assert!(sessions_before >= 2);
    AppLib::die(&doomed, &mut bed.sim);
    bed.settle();

    assert!(os.borrow().stats.crash_cleanups >= 1);
    assert!(
        os.borrow().session_count() < sessions_before,
        "dead process's sessions must be reclaimed"
    );
    assert!(
        !os.borrow().ports().in_use(Proto::Udp, 6000),
        "dead process's port must be released"
    );

    // The host is fully usable: rebind the same port, connect the same
    // destination.
    let fresh = bed.hosts[0].spawn_app();
    let ufd2 = AppLib::socket(&fresh, &mut bed.sim, Proto::Udp);
    AppLib::bind(&fresh, &mut bed.sim, ufd2, 6000).expect("rebind after crash");
    let client = tcp_client(&mut bed, &fresh, dst);
    assert!(
        run_until(&mut bed, SimTime::from_secs(30), || {
            *client.connected.borrow()
        }),
        "fresh connection after mid-handshake crash must establish"
    );
}

#[test]
fn tcp_close_holds_port_through_time_wait() {
    // "properly closing a TCP connection requires a four-way handshake
    // … followed by a waiting period" — the server runs that protocol
    // after the session migrates back, and releases resources only when
    // it completes.
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 53);
    let server_app = bed.hosts[1].spawn_app();
    tcp_echo_server(&mut bed, &server_app, 80);
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);

    let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Tcp);
    AppLib::bind(&client_app, &mut bed.sim, fd, 4321).unwrap();
    let connected = std::rc::Rc::new(std::cell::RefCell::new(false));
    {
        let c = connected.clone();
        client_app.borrow_mut().set_event_handler(
            fd,
            std::rc::Rc::new(std::cell::RefCell::new(
                move |_sim: &mut psd::sim::Sim, _fd, ev| {
                    if ev == psd::netstack::SockEvent::Connected {
                        *c.borrow_mut() = true;
                    }
                },
            )),
        );
    }
    AppLib::connect(&client_app, &mut bed.sim, fd, dst).unwrap();
    assert!(run_until(&mut bed, SimTime::from_secs(10), || {
        *connected.borrow()
    }));
    assert!(os.borrow().ports().in_use(Proto::Tcp, 4321));

    // Clean close: the session migrates back; the active closer enters
    // TIME_WAIT at the server.
    AppLib::close(&client_app, &mut bed.sim, fd);
    bed.run_for(SimTime::from_secs(5));
    assert!(
        os.borrow().ports().in_use(Proto::Tcp, 4321),
        "port must stay reserved during the 2MSL wait"
    );
    // After 2MSL (60 s) the shutdown protocol completes and the port
    // frees.
    bed.run_for(SimTime::from_secs(70));
    assert!(
        !os.borrow().ports().in_use(Proto::Tcp, 4321),
        "port must be released once TIME_WAIT expires"
    );
}
