//! The property suite of `tests/properties.rs`, ported to the
//! simulator's own deterministic [`psd::sim::Rng`] so it runs in tier-1
//! with no external crates (the proptest original stays behind the
//! `proptest` feature). Same properties, fixed seeds, reproducible
//! counterexamples: every failure message carries the case seed.

use psd::filter::{Binop, DemuxStrategy, DemuxTable, EndpointSpec, Insn, Program};
use psd::mbuf::MbufChain;
use psd::sim::Rng;
use psd::wire::{
    internet_checksum, ArpPacket, Checksum, EtherAddr, IcmpMessage, IpProto, Ipv4Header, TcpFlags,
    TcpHeader, UdpHeader,
};
use std::net::Ipv4Addr;

/// Runs `body` for `cases` deterministic cases, each with its own
/// forked stream. The per-case seed appears in panic messages.
fn cases(base_seed: u64, cases: u32, mut body: impl FnMut(&mut Rng)) {
    let mut root = Rng::new(base_seed);
    for case in 0..cases {
        let seed = root.next_u64();
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

fn rand_bytes(rng: &mut Rng, lo: usize, hi: usize) -> Vec<u8> {
    let mut v = vec![0u8; rng.range(lo as u64, hi as u64) as usize];
    rng.fill_bytes(&mut v);
    v
}

fn rand_ip(rng: &mut Rng) -> Ipv4Addr {
    Ipv4Addr::from(rng.next_u32())
}

#[test]
fn checksum_is_segmentation_invariant() {
    cases(0x5eed_0001, 128, |rng| {
        let data = rand_bytes(rng, 0, 511);
        let whole = internet_checksum(&data);
        let mut c = Checksum::new();
        let mut points: Vec<usize> = (0..rng.below(6))
            .map(|_| rng.below(data.len() as u64 + 1) as usize)
            .collect();
        points.sort_unstable();
        let mut prev = 0;
        for p in points {
            c.add_bytes(&data[prev..p]);
            prev = p;
        }
        c.add_bytes(&data[prev..]);
        assert_eq!(c.finish(), whole);
    });
}

#[test]
fn checksum_verifies_own_output() {
    cases(0x5eed_0002, 128, |rng| {
        let mut buf = rand_bytes(rng, 2, 255);
        if buf.len() % 2 == 1 {
            buf.push(0);
        }
        let ck = internet_checksum(&buf);
        buf.extend_from_slice(&ck.to_be_bytes());
        assert_eq!(internet_checksum(&buf), 0);
    });
}

#[test]
fn ipv4_header_roundtrips() {
    cases(0x5eed_0003, 128, |rng| {
        let len = rng.below(1480) as usize;
        let mut h = Ipv4Header::new(
            rand_ip(rng),
            rand_ip(rng),
            IpProto::from_u8(rng.below(256) as u8),
            len,
        );
        h.ident = rng.next_u32() as u16;
        h.dont_fragment = rng.chance(0.5);
        h.more_fragments = rng.chance(0.5);
        h.frag_offset = (rng.below(1600) as u16) & !7;
        let mut bytes = h.encode().to_vec();
        bytes.resize(20 + len, 0);
        let parsed = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(parsed, h);
    });
}

#[test]
fn tcp_header_roundtrips() {
    cases(0x5eed_0004, 128, |rng| {
        let h = TcpHeader {
            src_port: rng.next_u32() as u16,
            dst_port: rng.next_u32() as u16,
            seq: rng.next_u32(),
            ack: rng.next_u32(),
            flags: TcpFlags(rng.below(64) as u8),
            window: rng.next_u32() as u16,
            urgent: rng.next_u32() as u16,
            mss: rng.chance(0.5).then(|| rng.next_u32() as u16),
        };
        let bytes = h.encode();
        let (parsed, len) = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(len, h.header_len());
    });
}

#[test]
fn udp_header_roundtrips() {
    cases(0x5eed_0005, 128, |rng| {
        let h = UdpHeader::new(
            rng.next_u32() as u16,
            rng.next_u32() as u16,
            rng.below(2000) as usize,
        );
        let parsed = UdpHeader::parse(&h.encode()).unwrap();
        assert_eq!(parsed, h);
    });
}

#[test]
fn arp_roundtrips() {
    cases(0x5eed_0006, 128, |rng| {
        let mut smac = [0u8; 6];
        rng.fill_bytes(&mut smac);
        let p = ArpPacket::request(EtherAddr(smac), rand_ip(rng), rand_ip(rng));
        assert_eq!(ArpPacket::parse(&p.encode()).unwrap(), p);
        let r = p.reply_to(EtherAddr::local(9));
        assert_eq!(ArpPacket::parse(&r.encode()).unwrap(), r);
    });
}

#[test]
fn icmp_roundtrips() {
    cases(0x5eed_0007, 128, |rng| {
        let m = IcmpMessage::echo_request(
            rng.next_u32() as u16,
            rng.next_u32() as u16,
            rand_bytes(rng, 0, 127),
        );
        assert_eq!(IcmpMessage::parse(&m.encode()).unwrap(), m);
    });
}

#[test]
fn header_parsers_never_panic_on_garbage() {
    cases(0x5eed_0008, 256, |rng| {
        let bytes = rand_bytes(rng, 0, 127);
        let _ = Ipv4Header::parse(&bytes);
        let _ = TcpHeader::parse(&bytes);
        let _ = UdpHeader::parse(&bytes);
        let _ = ArpPacket::parse(&bytes);
        let _ = IcmpMessage::parse(&bytes);
        let _ = psd::wire::EthernetHeader::parse(&bytes);
    });
}

#[test]
fn filter_vm_is_memory_safe() {
    cases(0x5eed_0009, 256, |rng| {
        let insns: Vec<Insn> = (0..rng.below(64))
            .map(|_| match rng.below(8) {
                0 => Insn::PushLit(rng.next_u32() as u16),
                1 => Insn::PushWord(rng.below(200) as u16),
                2 => Insn::Op(Binop::Eq),
                3 => Insn::Op(Binop::And),
                4 => Insn::Op(Binop::Add),
                5 => Insn::CombineOr(Binop::Eq),
                6 => Insn::CombineAnd(Binop::Le),
                _ => Insn::Ret,
            })
            .collect();
        let packet = rand_bytes(rng, 0, 127);
        // Arbitrary programs on arbitrary packets: must terminate, never
        // panic, never read out of bounds (checked by construction).
        let out = Program::new(insns).run(&packet);
        assert!(out.steps <= psd::filter::MAX_STEPS + 1);
    });
}

#[test]
fn demux_strategies_agree() {
    cases(0x5eed_000a, 128, |rng| {
        let mut cspf: DemuxTable<usize> = DemuxTable::new(DemuxStrategy::Cspf);
        let mut mpf: DemuxTable<usize> = DemuxTable::new(DemuxStrategy::Mpf);
        for i in 0..rng.range(1, 9) as usize {
            let proto = if rng.chance(0.5) {
                IpProto::Tcp
            } else {
                IpProto::Udp
            };
            let local_ip = Ipv4Addr::new(10, 0, 0, rng.range(1, 4) as u8);
            let lport = rng.range(1000, 1009) as u16;
            let spec = if rng.chance(0.5) {
                EndpointSpec::connected(
                    proto,
                    local_ip,
                    lport,
                    Ipv4Addr::new(10, 0, 0, rng.range(1, 4) as u8),
                    rng.range(2000, 2009) as u16,
                )
            } else {
                EndpointSpec::unconnected(proto, local_ip, lport)
            };
            // Skip duplicate specs: match order among exact duplicates
            // is an implementation detail.
            if cspf.classify(&frame_for(&spec)).owner.is_none() {
                cspf.install(spec, i);
                mpf.install(spec, i);
            }
        }
        for _ in 0..rng.range(1, 19) {
            let frame = udp_or_tcp_frame(
                rng.chance(0.5),
                (
                    Ipv4Addr::new(10, 0, 0, rng.range(1, 5) as u8),
                    rng.range(2000, 2011) as u16,
                ),
                (
                    Ipv4Addr::new(10, 0, 0, rng.range(1, 4) as u8),
                    rng.range(1000, 1011) as u16,
                ),
            );
            let a = cspf.classify(&frame);
            let b = mpf.classify(&frame);
            assert_eq!(a.owner.map(|o| o.1), b.owner.map(|o| o.1));
        }
    });
}

#[derive(Debug, Clone)]
enum MbufOp {
    Append(Vec<u8>),
    TrimFront(usize),
    TrimBack(usize),
    CopyRange(usize, usize),
    Prepend(Vec<u8>),
}

#[test]
fn mbuf_chain_behaves_like_vec() {
    cases(0x5eed_000b, 128, |rng| {
        let ops: Vec<MbufOp> = (0..rng.below(24))
            .map(|_| match rng.below(5) {
                0 => MbufOp::Append(rand_bytes(rng, 0, 599)),
                1 => MbufOp::TrimFront(rng.next_u32() as u16 as usize),
                2 => MbufOp::TrimBack(rng.next_u32() as u16 as usize),
                3 => MbufOp::CopyRange(
                    rng.next_u32() as u16 as usize,
                    rng.next_u32() as u16 as usize,
                ),
                _ => MbufOp::Prepend(rand_bytes(rng, 1, 39)),
            })
            .collect();
        let mut chain = MbufChain::new();
        let mut model: Vec<u8> = Vec::new();
        for op in ops {
            match op {
                MbufOp::Append(data) => {
                    chain.append_slice(&data);
                    model.extend_from_slice(&data);
                }
                MbufOp::TrimFront(n) => {
                    let n = n % (model.len() + 1);
                    chain.trim_front(n);
                    model.drain(..n);
                }
                MbufOp::TrimBack(n) => {
                    let n = n % (model.len() + 1);
                    chain.trim_back(n);
                    model.truncate(model.len() - n);
                }
                MbufOp::CopyRange(off, len) => {
                    let off = off % (model.len() + 1);
                    let len = len % (model.len() - off + 1);
                    let (copy, _) = chain.copy_range(off, len);
                    let copied = copy.to_vec();
                    assert_eq!(&copied[..], &model[off..off + len]);
                }
                MbufOp::Prepend(hdr) => {
                    chain.prepend(&hdr);
                    let mut m = hdr.clone();
                    m.extend_from_slice(&model);
                    model = m;
                }
            }
            assert_eq!(chain.len(), model.len());
            let bytes = chain.to_vec();
            assert_eq!(&bytes[..], model.as_slice());
        }
    });
}

#[test]
fn ip_reassembly_from_random_fragment_order() {
    cases(0x5eed_000c, 64, |rng| {
        use psd::netstack::ip::{fragment, Reassembler};
        let len = rng.range(1600, 5999) as usize;
        let mtu = [576usize, 1006, 1500][rng.below(3) as usize];
        let payload: Vec<u8> = (0..len).map(|i| (i % 253) as u8).collect();
        let mut hdr = Ipv4Header::new(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            IpProto::Udp,
            len,
        );
        hdr.ident = rng.next_u32() as u16;
        let mut frags = fragment(&hdr, &payload, mtu);
        for i in (1..frags.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            frags.swap(i, j);
        }
        let mut r = Reassembler::new();
        let mut done = None;
        for (fh, data) in &frags {
            if let Some(d) = r.insert(fh, data, psd::sim::SimTime::ZERO) {
                done = Some(d);
            }
        }
        let (_, got) = done.expect("all fragments inserted");
        assert_eq!(got, payload);
    });
}

/// Whole-system property: a TCP transfer through the decomposed
/// architecture delivers its bytes exactly once, in order, whatever
/// the wire does (loss, duplication, reordering within bounds). Three
/// deterministic fault mixes stand in for the proptest original's
/// random sampling.
#[test]
fn tcp_delivery_is_exactly_once_in_order_under_faults() {
    cases(0x5eed_000d, 3, |rng| {
        use psd::core::{AppLib, Fd, FdEventFn};
        use psd::netstack::{InetAddr, SockEvent};
        use psd::server::Proto;
        use psd::sim::{Platform, SimTime};
        use psd::systems::{SystemConfig, TestBed};
        use std::cell::RefCell;
        use std::rc::Rc;

        let seed = rng.next_u64();
        let loss = rng.f64() * 0.12;
        let dup = rng.f64() * 0.08;
        let reorder = rng.f64() * 0.08;
        let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, seed);
        bed.arm_wire_faults(seed, loss, dup, reorder);
        let rx_app = bed.hosts[1].spawn_app();
        let received: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        let lfd = AppLib::socket(&rx_app, &mut bed.sim, Proto::Tcp);
        AppLib::bind(&rx_app, &mut bed.sim, lfd, 80).unwrap();
        AppLib::listen(&rx_app, &mut bed.sim, lfd, 2).unwrap();
        {
            let app = rx_app.clone();
            let rec = received.clone();
            let conn_app = rx_app.clone();
            let conn: FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                    if matches!(ev, SockEvent::Readable | SockEvent::PeerClosed) {
                        let mut buf = [0u8; 8192];
                        while let Ok(n) = AppLib::recv(&conn_app, sim, fd, &mut buf) {
                            if n == 0 {
                                break;
                            }
                            rec.borrow_mut().extend_from_slice(&buf[..n]);
                        }
                    }
                },
            ));
            let listen: FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                    if ev == SockEvent::Readable {
                        while let Ok(c) = AppLib::accept(&app, sim, fd) {
                            app.borrow_mut().set_event_handler(c, conn.clone());
                        }
                    }
                },
            ));
            rx_app.borrow_mut().set_event_handler(lfd, listen);
        }

        let tx_app = bed.hosts[0].spawn_app();
        let total = 24 * 1024usize;
        let pattern: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let sent = Rc::new(RefCell::new(0usize));
        let cfd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Tcp);
        {
            let app = tx_app.clone();
            let sent = sent.clone();
            let data = pattern.clone();
            let h: FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                    if matches!(ev, SockEvent::Connected | SockEvent::Writable) {
                        loop {
                            let off = *sent.borrow();
                            if off >= data.len() {
                                break;
                            }
                            match AppLib::send(&app, sim, fd, &data[off..]) {
                                Ok(n) => *sent.borrow_mut() += n,
                                Err(_) => break,
                            }
                        }
                    }
                },
            ));
            tx_app.borrow_mut().set_event_handler(cfd, h);
        }
        let dst = InetAddr::new(bed.hosts[1].ip, 80);
        AppLib::connect(&tx_app, &mut bed.sim, cfd, dst).unwrap();

        // Drive with periodic nudges: the sender's Writable events plus
        // TCP's own timers must recover from anything the wire does.
        let mut guard = 0;
        while received.borrow().len() < total {
            guard += 1;
            assert!(
                guard < 6_000,
                "stalled at {} bytes",
                received.borrow().len()
            );
            let t = bed.sim.now() + SimTime::from_millis(200);
            bed.sim.run_until(t);
        }
        let got = received.borrow().clone();
        assert_eq!(&got[..], pattern.as_slice());
    });
}

fn udp_or_tcp_frame(tcp: bool, src: (Ipv4Addr, u16), dst: (Ipv4Addr, u16)) -> Vec<u8> {
    let proto = if tcp { IpProto::Tcp } else { IpProto::Udp };
    let tl = if tcp { 20 } else { 8 };
    let ip = Ipv4Header::new(src.0, dst.0, proto, tl);
    let eth = psd::wire::EthernetHeader {
        dst: EtherAddr::local(2),
        src: EtherAddr::local(1),
        ethertype: psd::wire::EtherType::Ipv4,
    };
    let mut f = eth.encode().to_vec();
    f.extend_from_slice(&ip.encode());
    if tcp {
        let h = TcpHeader {
            src_port: src.1,
            dst_port: dst.1,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            urgent: 0,
            mss: None,
        };
        f.extend_from_slice(&h.encode());
    } else {
        f.extend_from_slice(&UdpHeader::new(src.1, dst.1, 0).encode());
    }
    f
}

fn frame_for(spec: &EndpointSpec) -> Vec<u8> {
    let remote = spec.remote.unwrap_or((Ipv4Addr::new(10, 0, 0, 99), 4999));
    udp_or_tcp_frame(
        spec.proto == IpProto::Tcp,
        remote,
        (spec.local_ip, spec.local_port),
    )
}
