//! Shared helpers for the integration tests: event-driven echo servers
//! and request/response clients built on the proxy socket API.
//!
//! Each test binary uses a different subset of these helpers.
#![allow(dead_code)]

use psd::core::{AppHandle, AppLib, Fd, FdEventFn};
use psd::netstack::{InetAddr, SockEvent, SocketError};
use psd::server::Proto;
use psd::sim::SimTime;
use psd::systems::TestBed;
use std::cell::RefCell;
use std::rc::Rc;

/// Starts a TCP echo server on `port` in `app`. Returns a counter of
/// echoed bytes. Handles backpressure: bytes that do not fit in the
/// send buffer are held and flushed on `Writable`.
pub fn tcp_echo_server(bed: &mut TestBed, app: &AppHandle, port: u16) -> Rc<RefCell<usize>> {
    let echoed = Rc::new(RefCell::new(0usize));
    let lfd = AppLib::socket(app, &mut bed.sim, Proto::Tcp);
    AppLib::bind(app, &mut bed.sim, lfd, port).expect("bind");
    AppLib::listen(app, &mut bed.sim, lfd, 8).expect("listen");
    let app2 = app.clone();
    let echoed2 = echoed.clone();
    let pending: Rc<RefCell<std::collections::HashMap<Fd, Vec<u8>>>> =
        Rc::new(RefCell::new(std::collections::HashMap::new()));
    let conn_handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if matches!(
                ev,
                SockEvent::Readable | SockEvent::PeerClosed | SockEvent::Writable
            ) {
                // Flush anything held back by a full send buffer first.
                loop {
                    let held = pending.borrow().get(&fd).map_or(0, Vec::len);
                    if held == 0 {
                        break;
                    }
                    let chunk: Vec<u8> = pending.borrow().get(&fd).unwrap().clone();
                    match AppLib::send(&app2, sim, fd, &chunk) {
                        Ok(n) => {
                            pending.borrow_mut().get_mut(&fd).unwrap().drain(..n);
                            if n == 0 {
                                return;
                            }
                        }
                        Err(SocketError::WouldBlock) => return,
                        Err(_) => return,
                    }
                }
                loop {
                    let mut buf = [0u8; 4096];
                    match AppLib::recv(&app2, sim, fd, &mut buf) {
                        Ok(0) => {
                            AppLib::close(&app2, sim, fd);
                            break;
                        }
                        Ok(n) => {
                            *echoed2.borrow_mut() += n;
                            let mut off = 0;
                            while off < n {
                                match AppLib::send(&app2, sim, fd, &buf[off..n]) {
                                    Ok(m) => off += m,
                                    Err(SocketError::WouldBlock) => {
                                        pending
                                            .borrow_mut()
                                            .entry(fd)
                                            .or_default()
                                            .extend_from_slice(&buf[off..n]);
                                        return;
                                    }
                                    Err(_) => return,
                                }
                            }
                        }
                        Err(SocketError::WouldBlock) => break,
                        Err(_) => break,
                    }
                }
            }
        },
    ));
    let app3 = app.clone();
    let listen_handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                while let Ok(conn) = AppLib::accept(&app3, sim, fd) {
                    app3.borrow_mut()
                        .set_event_handler(conn, conn_handler.clone());
                }
            }
        },
    ));
    app.borrow_mut().set_event_handler(lfd, listen_handler);
    echoed
}

/// Starts a UDP echo server on `port`.
pub fn udp_echo_server(bed: &mut TestBed, app: &AppHandle, port: u16) {
    let fd = AppLib::socket(app, &mut bed.sim, Proto::Udp);
    AppLib::bind(app, &mut bed.sim, fd, port).expect("bind");
    let app2 = app.clone();
    let handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                loop {
                    let mut buf = [0u8; 4096];
                    match AppLib::recvfrom(&app2, sim, fd, &mut buf) {
                        Ok((n, from)) => {
                            let _ = AppLib::sendto(&app2, sim, fd, &buf[..n], Some(from));
                        }
                        Err(_) => break,
                    }
                }
            }
        },
    ));
    app.borrow_mut().set_event_handler(fd, handler);
}

/// State of a request/response TCP client.
pub struct TcpClient {
    /// Client descriptor.
    pub fd: Fd,
    /// Collected reply bytes.
    pub replies: Rc<RefCell<Vec<u8>>>,
    /// Set when the connection is established.
    pub connected: Rc<RefCell<bool>>,
    /// Set on a connection error.
    pub error: Rc<RefCell<Option<SocketError>>>,
}

/// Connects a TCP client that records everything it receives.
pub fn tcp_client(bed: &mut TestBed, app: &AppHandle, dst: InetAddr) -> TcpClient {
    let fd = AppLib::socket(app, &mut bed.sim, Proto::Tcp);
    let replies = Rc::new(RefCell::new(Vec::new()));
    let connected = Rc::new(RefCell::new(false));
    let error = Rc::new(RefCell::new(None));
    let (app2, r2, c2, e2) = (
        app.clone(),
        replies.clone(),
        connected.clone(),
        error.clone(),
    );
    let handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| match ev {
            SockEvent::Connected => *c2.borrow_mut() = true,
            SockEvent::Readable => loop {
                let mut buf = [0u8; 4096];
                match AppLib::recv(&app2, sim, fd, &mut buf) {
                    Ok(0) => break,
                    Ok(n) => r2.borrow_mut().extend_from_slice(&buf[..n]),
                    Err(_) => break,
                }
            },
            SockEvent::Error(e) => *e2.borrow_mut() = Some(e),
            _ => {}
        },
    ));
    app.borrow_mut().set_event_handler(fd, handler);
    AppLib::connect(app, &mut bed.sim, fd, dst).expect("connect");
    TcpClient {
        fd,
        replies,
        connected,
        error,
    }
}

/// Runs the simulation until `cond` holds or `timeout` virtual time
/// elapses. Returns true if the condition was met.
pub fn run_until(bed: &mut TestBed, timeout: SimTime, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = bed.sim.now() + timeout;
    while bed.sim.now() < deadline {
        if cond() {
            return true;
        }
        let step = (bed.sim.now() + SimTime::from_millis(10)).min(deadline);
        bed.sim.run_until(step);
    }
    cond()
}
