//! Seeded chaos suite: randomized fault schedules over the whole
//! decomposed system. Every run arms all seven fault sites with
//! seed-derived probabilities, drives a mixed UDP/TCP workload while a
//! supervisor loop restarts crashed servers and re-registers
//! applications, and then asserts the recovery invariants:
//!
//! * TCP delivery is exactly-once and in-order (the echoed stream is
//!   always a prefix of what was sent, byte for byte);
//! * after every descriptor closes, no session or port leaks on the
//!   client host, and the server host holds at most its two services;
//! * the same seed reproduces the identical run — the full digest
//!   (byte counts, server stats, port namespaces, Ethernet counters,
//!   operation census and fault-plane log) is byte-identical.

mod common;

use psd::core::{AppHandle, AppLib, Fd, FdEventFn};
use psd::netstack::{InetAddr, SockEvent, SocketError};
use psd::server::{OsServer, Proto, ServerHandle};
use psd::sim::{FaultSite, Platform, Rng, SimTime};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 34];

/// Supervisor: restart any crashed server and re-register the
/// applications that live on a restarted host.
fn revive(bed: &mut TestBed, apps: &[(usize, AppHandle)]) {
    let servers: Vec<Option<ServerHandle>> = bed.hosts.iter().map(|h| h.server.clone()).collect();
    let mut restarted = vec![false; servers.len()];
    for (i, os) in servers.iter().enumerate() {
        if let Some(os) = os {
            if os.borrow().is_down() {
                OsServer::restart(os, &mut bed.sim);
                restarted[i] = true;
            }
        }
    }
    for (host, app) in apps {
        if restarted[*host] {
            let _ = AppLib::reregister(app, &mut bed.sim);
        }
    }
}

/// Socket + bind with supervisor-assisted retry (a crash can eat any
/// control RPC; the workload must survive that).
fn bind_with_retry(
    bed: &mut TestBed,
    apps: &[(usize, AppHandle)],
    app: &AppHandle,
    proto: Proto,
    port: u16,
) -> Option<Fd> {
    for _ in 0..8 {
        let fd = AppLib::socket(app, &mut bed.sim, proto);
        if AppLib::bind(app, &mut bed.sim, fd, port).is_ok() {
            return Some(fd);
        }
        AppLib::close(app, &mut bed.sim, fd);
        revive(bed, apps);
        bed.run_for(SimTime::from_millis(20));
    }
    None
}

/// UDP echo service that tolerates faults (drops errors silently).
fn chaos_udp_echo(bed: &mut TestBed, apps: &[(usize, AppHandle)], app: &AppHandle, port: u16) {
    let fd = bind_with_retry(bed, apps, app, Proto::Udp, port).expect("udp echo bind");
    let app2 = app.clone();
    let handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                let mut buf = [0u8; 4096];
                while let Ok((n, from)) = AppLib::recvfrom(&app2, sim, fd, &mut buf) {
                    let _ = AppLib::sendto(&app2, sim, fd, &buf[..n], Some(from));
                }
            }
        },
    ));
    app.borrow_mut().set_event_handler(fd, handler);
}

/// TCP echo service whose connections clean up on resets: a crashed
/// server aborts resident peers, and the leaked-session invariant
/// needs the service to close what dies under it.
fn chaos_tcp_echo(
    bed: &mut TestBed,
    apps: &[(usize, AppHandle)],
    app: &AppHandle,
    port: u16,
) -> Rc<RefCell<usize>> {
    let echoed = Rc::new(RefCell::new(0usize));
    let lfd = bind_with_retry(bed, apps, app, Proto::Tcp, port).expect("tcp echo bind");
    for _ in 0..8 {
        if AppLib::listen(app, &mut bed.sim, lfd, 8).is_ok() {
            break;
        }
        revive(bed, apps);
        bed.run_for(SimTime::from_millis(20));
    }
    let app2 = app.clone();
    let echoed2 = echoed.clone();
    let conn_handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| match ev {
            SockEvent::Readable | SockEvent::PeerClosed => loop {
                let mut buf = [0u8; 4096];
                match AppLib::recv(&app2, sim, fd, &mut buf) {
                    Ok(0) => {
                        AppLib::close(&app2, sim, fd);
                        break;
                    }
                    Ok(n) => {
                        *echoed2.borrow_mut() += n;
                        let mut off = 0;
                        while off < n {
                            match AppLib::send(&app2, sim, fd, &buf[off..n]) {
                                Ok(m) if m > 0 => off += m,
                                _ => return, // backpressure or fault: drop the rest
                            }
                        }
                    }
                    Err(SocketError::WouldBlock) => break,
                    Err(_) => {
                        AppLib::close(&app2, sim, fd);
                        break;
                    }
                }
            },
            SockEvent::Error(_) => AppLib::close(&app2, sim, fd),
            _ => {}
        },
    ));
    let app3 = app.clone();
    let listen_handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                while let Ok(conn) = AppLib::accept(&app3, sim, fd) {
                    app3.borrow_mut()
                        .set_event_handler(conn, conn_handler.clone());
                }
            }
        },
    ));
    app.borrow_mut().set_event_handler(lfd, listen_handler);
    echoed
}

struct ChaosClient {
    fd: Fd,
    replies: Rc<RefCell<Vec<u8>>>,
    connected: Rc<RefCell<bool>>,
}

/// TCP client with supervisor-assisted connect retry. Returns None if
/// the fault schedule never lets a connection form.
fn chaos_tcp_client(
    bed: &mut TestBed,
    apps: &[(usize, AppHandle)],
    app: &AppHandle,
    dst: InetAddr,
) -> Option<ChaosClient> {
    for _ in 0..5 {
        let fd = AppLib::socket(app, &mut bed.sim, Proto::Tcp);
        let replies = Rc::new(RefCell::new(Vec::new()));
        let connected = Rc::new(RefCell::new(false));
        let (app2, r2, c2) = (app.clone(), replies.clone(), connected.clone());
        let handler: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| match ev {
                SockEvent::Connected => *c2.borrow_mut() = true,
                SockEvent::Readable => loop {
                    let mut buf = [0u8; 4096];
                    match AppLib::recv(&app2, sim, fd, &mut buf) {
                        Ok(0) => break,
                        Ok(n) => r2.borrow_mut().extend_from_slice(&buf[..n]),
                        Err(_) => break,
                    }
                },
                _ => {}
            },
        ));
        app.borrow_mut().set_event_handler(fd, handler);
        if AppLib::connect(app, &mut bed.sim, fd, dst).is_ok() {
            let ok = {
                let c = connected.clone();
                let deadline = bed.sim.now() + SimTime::from_secs(30);
                loop {
                    if *c.borrow() {
                        break true;
                    }
                    if bed.sim.now() >= deadline {
                        break false;
                    }
                    bed.run_for(SimTime::from_millis(10));
                    revive(bed, apps);
                }
            };
            if ok {
                return Some(ChaosClient {
                    fd,
                    replies,
                    connected,
                });
            }
        }
        AppLib::close(app, &mut bed.sim, fd);
        revive(bed, apps);
        bed.run_for(SimTime::from_millis(50));
    }
    None
}

/// One full chaos run: returns the deterministic digest. `ballast` is
/// the number of extra live UDP sessions the client host carries
/// through the whole schedule (0 for the classic two-session matrix;
/// the high-session-count configuration uses Table 5 scale).
fn run_chaos(config: SystemConfig, seed: u64, ballast: usize) -> String {
    let mut bed = TestBed::new(config, Platform::DecStation5000_200, seed);
    let censuses = bed.attach_census();
    let plane = bed.attach_fault_plane();
    {
        let mut p = plane.borrow_mut();
        p.set_rng(Rng::new(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1));
        p.arm(FaultSite::ProxyRpc, 0.02);
        p.arm(FaultSite::ServerCrash, 0.01);
        p.arm(FaultSite::MigrationCapsule, 0.10);
        p.arm(FaultSite::FilterTable, 0.05);
        p.arm(FaultSite::ShmRing, 0.05);
        p.arm(FaultSite::NicRx, 0.001);
        p.arm(FaultSite::WireBurstLoss, 0.0005);
    }
    let server_app = bed.hosts[1].spawn_app();
    let client_app = bed.hosts[0].spawn_app();
    let apps = vec![(0usize, client_app.clone()), (1usize, server_app.clone())];

    let tcp_echoed = chaos_tcp_echo(&mut bed, &apps, &server_app, 80);
    chaos_udp_echo(&mut bed, &apps, &server_app, 53);

    // --- ballast: a high session count riding under the same faults ---
    let mut ballast_fds = Vec::with_capacity(ballast);
    for i in 0..ballast {
        if let Some(fd) =
            bind_with_retry(&mut bed, &apps, &client_app, Proto::Udp, 30_000 + i as u16)
        {
            ballast_fds.push(fd);
        }
    }

    // --- UDP workload ---
    let udp_fd = bind_with_retry(&mut bed, &apps, &client_app, Proto::Udp, 4000);
    let udp_got = Rc::new(RefCell::new(0usize));
    if let Some(fd) = udp_fd {
        let (app2, got2) = (client_app.clone(), udp_got.clone());
        let handler: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                if ev == SockEvent::Readable {
                    let mut buf = [0u8; 4096];
                    while AppLib::recvfrom(&app2, sim, fd, &mut buf).is_ok() {
                        *got2.borrow_mut() += 1;
                    }
                }
            },
        ));
        client_app.borrow_mut().set_event_handler(fd, handler);
        let dst = InetAddr::new(bed.hosts[1].ip, 53);
        for i in 0..30u32 {
            let payload = vec![(i % 251) as u8; 64 + (i as usize % 64)];
            let _ = AppLib::sendto(&client_app, &mut bed.sim, fd, &payload, Some(dst));
            bed.run_for(SimTime::from_millis(10));
            revive(&mut bed, &apps);
        }
    }

    // --- TCP workload ---
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = chaos_tcp_client(&mut bed, &apps, &client_app, dst);
    let mut tcp_sent = 0usize;
    let pattern: Vec<u8> = (0..12 * 1024u32).map(|i| (i % 239) as u8).collect();
    if let Some(client) = &client {
        let mut stalled = 0;
        while tcp_sent < pattern.len() && stalled < 500 {
            match AppLib::send(&client_app, &mut bed.sim, client.fd, &pattern[tcp_sent..]) {
                Ok(n) if n > 0 => {
                    tcp_sent += n;
                    stalled = 0;
                }
                _ => stalled += 1,
            }
            bed.run_for(SimTime::from_millis(10));
            revive(&mut bed, &apps);
        }
        // Drain: wait for the echo of everything that was accepted, or
        // give up after a bounded quiet period (the path may have died).
        let deadline = bed.sim.now() + SimTime::from_secs(60);
        while client.replies.borrow().len() < tcp_sent && bed.sim.now() < deadline {
            bed.run_for(SimTime::from_millis(20));
            revive(&mut bed, &apps);
        }
        // Invariant: exactly-once, in-order. Whatever came back must be
        // a byte-exact prefix of what was sent.
        let replies = client.replies.borrow();
        assert!(
            replies.len() <= tcp_sent,
            "more bytes echoed than sent: {} > {} (config {} seed {})",
            replies.len(),
            tcp_sent,
            config.label(),
            seed
        );
        assert_eq!(
            replies.as_slice(),
            &pattern[..replies.len()],
            "TCP stream corrupted (config {} seed {})",
            config.label(),
            seed
        );
    }

    // --- teardown: close every client descriptor and check for leaks ---
    revive(&mut bed, &apps);
    if let Some(client) = &client {
        AppLib::close(&client_app, &mut bed.sim, client.fd);
    }
    if let Some(fd) = udp_fd {
        AppLib::close(&client_app, &mut bed.sim, fd);
    }
    for fd in &ballast_fds {
        AppLib::close(&client_app, &mut bed.sim, *fd);
    }
    // Drain until the client host's sessions are gone (TCP holds the
    // session through FIN/TIME_WAIT) or a generous bound passes.
    for _ in 0..1200 {
        bed.run_for(SimTime::from_millis(100));
        revive(&mut bed, &apps);
        let clear = bed.hosts[0]
            .server
            .as_ref()
            .is_none_or(|os| os.borrow().session_count() == 0);
        if clear {
            break;
        }
    }

    let os0 = bed.hosts[0].server.clone();
    if let Some(os0) = &os0 {
        assert_eq!(
            os0.borrow().session_count(),
            0,
            "client host leaked sessions (config {} seed {})",
            config.label(),
            seed
        );
        assert_eq!(
            os0.borrow().ports().len(),
            0,
            "client host leaked ports (config {} seed {})",
            config.label(),
            seed
        );
    }
    let os1 = bed.hosts[1].server.clone();
    if let Some(os1) = &os1 {
        // At most the two echo services (fewer if a crash killed them).
        assert!(
            os1.borrow().session_count() <= 2,
            "server host leaked sessions: {} (config {} seed {})",
            os1.borrow().session_count(),
            config.label(),
            seed
        );
        assert!(os1.borrow().ports().len() <= 2);
    }

    // --- digest ---
    let mut d = String::new();
    let _ = writeln!(d, "config={} seed={}", config.label(), seed);
    let _ = writeln!(
        d,
        "udp_replies={} tcp_sent={} tcp_replies={} tcp_echoed={} connected={} ballast={}",
        *udp_got.borrow(),
        tcp_sent,
        client.as_ref().map_or(0, |c| c.replies.borrow().len()),
        *tcp_echoed.borrow(),
        client.as_ref().is_some_and(|c| *c.connected.borrow()),
        ballast_fds.len(),
    );
    for (i, host) in bed.hosts.iter().enumerate() {
        if let Some(os) = &host.server {
            let s = os.borrow();
            let _ = writeln!(
                d,
                "host{} sessions={} ports={} stats={:?}",
                i,
                s.session_count(),
                s.ports().len(),
                s.stats
            );
        }
    }
    let _ = writeln!(d, "ether={:?}", bed.ether.borrow().stats());
    let _ = writeln!(d, "injected={}", plane.borrow().total_injected());
    let _ = writeln!(d, "plane:\n{}", plane.borrow().snapshot());
    for (i, c) in censuses.iter().enumerate() {
        let _ = writeln!(d, "census host{}:\n{}", i, c.borrow().snapshot());
    }
    d
}

/// Same seed, same schedule, same digest — byte for byte.
fn chaos_matrix(config: SystemConfig) {
    let mut injected_total = 0u64;
    for seed in SEEDS {
        let d1 = run_chaos(config, seed, 0);
        let d2 = run_chaos(config, seed, 0);
        assert_eq!(
            d1,
            d2,
            "chaos run is not reproducible for {} seed {}",
            config.label(),
            seed
        );
        let line = d1
            .lines()
            .find(|l| l.starts_with("injected="))
            .expect("digest has an injection count");
        injected_total += line["injected=".len()..].parse::<u64>().unwrap();
    }
    assert!(
        injected_total > 0,
        "the chaos matrix for {} never injected a fault — the suite is vacuous",
        config.label()
    );
}

#[test]
fn chaos_server_based_placement() {
    chaos_matrix(SystemConfig::UxServer);
}

#[test]
fn chaos_library_ipc_placement() {
    chaos_matrix(SystemConfig::LibraryIpc);
}

#[test]
fn chaos_library_shm_placement() {
    chaos_matrix(SystemConfig::LibraryShm);
}

/// Table 5 scale under chaos: one configuration carries a thousand
/// live ballast sessions through the full fault schedule (all seven
/// sites armed). The exactly-once, no-leak and same-seed-digest
/// invariants must hold unchanged while the session table, port
/// namespace, and kernel filter table are three orders of magnitude
/// fuller than in the classic matrix.
#[test]
fn chaos_high_session_count() {
    let mut injected_total = 0u64;
    for seed in [3u64, 21] {
        let d1 = run_chaos(SystemConfig::LibraryShm, seed, 1024);
        let d2 = run_chaos(SystemConfig::LibraryShm, seed, 1024);
        assert_eq!(
            d1, d2,
            "high-session-count chaos run is not reproducible (seed {seed})"
        );
        assert!(
            d1.contains("ballast=1024"),
            "the fault schedule must not prevent the ballast from standing up"
        );
        let line = d1
            .lines()
            .find(|l| l.starts_with("injected="))
            .expect("digest has an injection count");
        injected_total += line["injected=".len()..].parse::<u64>().unwrap();
    }
    assert!(
        injected_total > 0,
        "the high-session-count chaos runs never injected a fault"
    );
}
