//! Structural invariants of the packet-lifecycle tracer, used as a
//! reusable oracle across workload styles:
//!
//! * spans nest and close; no packet is left without exactly one
//!   terminal state (delivered / absorbed / dropped-with-reason);
//! * the tracer and the operation census count the same charge-site
//!   events (they share one hook, so disagreement means a fork);
//! * stage latencies reproduce the paper's Table 3 receive-side
//!   ordering (SHM-IPF ≤ SHM ≤ IPC);
//! * a seeded rerun produces a byte-identical Chrome trace document.
//!
//! Tracing charges no virtual time and consumes no randomness, so
//! every scenario here also implicitly checks that attaching the
//! tracer does not perturb the run.

mod common;

use common::run_until;
use psd::bench::workload::{session_scaling_with, WorkloadSpec};
use psd::core::{AppHandle, AppLib, Fd, FdEventFn};
use psd::filter::DemuxStrategy;
use psd::netstack::{InetAddr, SockEvent};
use psd::server::Proto;
use psd::sim::{FaultSite, OpKind, Platform, Rng, SimTime, TraceHandle, Tracer};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::rc::Rc;

const PORT: u16 = 4900;

/// Binds a draining UDP receiver on `port`, counting datagrams.
fn udp_drain(bed: &mut TestBed, app: &AppHandle, port: u16) -> Rc<RefCell<usize>> {
    let fd = AppLib::socket(app, &mut bed.sim, Proto::Udp);
    AppLib::bind(app, &mut bed.sim, fd, port).expect("bind");
    let got = Rc::new(RefCell::new(0usize));
    let (app2, got2) = (app.clone(), got.clone());
    let handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                let mut buf = [0u8; 4096];
                while AppLib::recvfrom(&app2, sim, fd, &mut buf).is_ok() {
                    *got2.borrow_mut() += 1;
                }
            }
        },
    ));
    app.borrow_mut().set_event_handler(fd, handler);
    got
}

/// Stands up a host0 → host1 UDP path, warms it (ARP, implicit bind),
/// attaches a tracer (and a census when asked), then sends `n`
/// datagrams and waits for delivery. Returns the bed and the handles.
fn traced_udp_run(
    config: SystemConfig,
    seed: u64,
    n: usize,
    with_census: bool,
) -> (TestBed, TraceHandle, Option<Vec<psd::sim::CensusHandle>>) {
    let mut bed = TestBed::new(config, Platform::DecStation5000_200, seed);
    let rx_app = bed.hosts[1].spawn_app();
    let received = udp_drain(&mut bed, &rx_app, PORT);
    let tx_app = bed.hosts[0].spawn_app();
    let tx_fd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Udp);
    let dst = InetAddr::new(bed.hosts[1].ip, PORT);
    // Warm up: the first library send to a fresh destination may drop
    // on an ARP miss.
    for _ in 0..50 {
        AppLib::sendto(&tx_app, &mut bed.sim, tx_fd, b"warm", Some(dst)).expect("warm");
        if run_until(&mut bed, SimTime::from_millis(500), || {
            *received.borrow() >= 1
        }) {
            break;
        }
    }
    bed.settle();
    assert!(*received.borrow() >= 1, "warm-up never delivered");

    let tracer = bed.attach_tracer();
    let censuses = with_census.then(|| bed.attach_census());
    let already = *received.borrow();
    for _ in 0..n {
        AppLib::sendto(&tx_app, &mut bed.sim, tx_fd, &[7u8; 256], Some(dst)).expect("send");
    }
    assert!(
        run_until(&mut bed, SimTime::from_secs(10), || *received.borrow()
            >= already + n),
        "datagrams not delivered"
    );
    bed.settle();
    (bed, tracer, censuses)
}

/// Every traced packet must reach exactly one terminal state, every
/// span must nest and close, and the terminal tallies must cover the
/// packet population.
fn assert_invariants(tracer: &TraceHandle, context: &str) {
    let t = tracer.borrow();
    let violations = t.check_invariants();
    assert!(violations.is_empty(), "{context}: {violations:?}");
    let (delivered, absorbed, dropped) = t.terminal_counts();
    assert_eq!(
        delivered + absorbed + dropped,
        t.packet_count() as u64,
        "{context}: terminals must cover every packet exactly once"
    );
}

#[test]
fn end_to_end_udp_run_satisfies_invariants() {
    for (config, seed) in [
        (SystemConfig::Mach25InKernel, 31),
        (SystemConfig::UxServer, 32),
        (SystemConfig::LibraryIpc, 33),
        (SystemConfig::LibraryShm, 34),
        (SystemConfig::LibraryShmIpf, 35),
    ] {
        let (_bed, tracer, _) = traced_udp_run(config, seed, 16, false);
        assert_invariants(&tracer, config.label());
        let t = tracer.borrow();
        let (delivered, _, _) = t.terminal_counts();
        assert!(
            delivered >= 32,
            "{}: 16 datagrams should deliver 16 wire frames + 16 copies, got {delivered}",
            config.label()
        );
        assert!(
            !t.end_to_end_latencies().is_empty(),
            "{}: no end-to-end latencies recorded",
            config.label()
        );
    }
}

/// The tracer and the census are fed by the same charge-site hook;
/// their copy/crossing/wakeup totals can therefore never disagree.
/// (Scoped to the op kinds the census only learns through `Charge` —
/// session-migration events reach the census directly.)
#[test]
fn trace_and_census_agree_on_charge_site_counts() {
    let (_bed, tracer, censuses) = traced_udp_run(SystemConfig::LibraryShm, 36, 12, true);
    let censuses = censuses.unwrap();
    let t = tracer.borrow();
    for op in [
        OpKind::PacketBodyCopy,
        OpKind::BoundaryCrossing,
        OpKind::Wakeup,
    ] {
        let census_total: u64 = censuses.iter().map(|c| c.borrow().total(op)).sum();
        assert_eq!(
            t.op_total(op),
            census_total,
            "tracer and census disagree on {op:?}"
        );
    }
}

/// Table 3's receive-latency ordering, reproduced from the trace's
/// end-to-end histogram rather than from the benchmark's RTT numbers.
#[test]
fn end_to_end_latency_reproduces_table3_ordering() {
    let p50 = |config: SystemConfig, seed: u64| -> u64 {
        let (_bed, tracer, _) = traced_udp_run(config, seed, 24, false);
        assert_invariants(&tracer, config.label());
        let t = tracer.borrow();
        let lat = t.end_to_end_latencies();
        assert!(!lat.is_empty());
        Tracer::percentile(&lat, 50)
    };
    let ipc = p50(SystemConfig::LibraryIpc, 41);
    let shm = p50(SystemConfig::LibraryShm, 41);
    let ipf = p50(SystemConfig::LibraryShmIpf, 41);
    assert!(
        ipf <= shm && shm <= ipc,
        "per-packet receive latency must order SHM-IPF ({ipf}) <= SHM ({shm}) <= IPC ({ipc})"
    );
}

/// Armed fault plane: injections appear as named trace events and
/// faulted packets still terminate exactly once (as drops with
/// `FaultInjected`/`WireLoss`, or delivered after recovery).
#[test]
fn chaos_style_run_satisfies_invariants() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 51);
    let rx_app = bed.hosts[1].spawn_app();
    let received = udp_drain(&mut bed, &rx_app, PORT);
    let tx_app = bed.hosts[0].spawn_app();
    let tx_fd = AppLib::socket(&tx_app, &mut bed.sim, Proto::Udp);
    let dst = InetAddr::new(bed.hosts[1].ip, PORT);
    for _ in 0..50 {
        AppLib::sendto(&tx_app, &mut bed.sim, tx_fd, b"warm", Some(dst)).expect("warm");
        if run_until(&mut bed, SimTime::from_millis(500), || {
            *received.borrow() >= 1
        }) {
            break;
        }
    }
    bed.settle();

    let tracer = bed.attach_tracer();
    let plane = bed.attach_fault_plane();
    {
        let mut p = plane.borrow_mut();
        p.set_rng(Rng::new(0xFEED_F00D));
        p.arm(FaultSite::NicRx, 0.10);
        p.arm(FaultSite::WireBurstLoss, 0.05);
    }
    for _ in 0..40 {
        AppLib::sendto(&tx_app, &mut bed.sim, tx_fd, &[9u8; 128], Some(dst)).expect("send");
        bed.run_for(SimTime::from_millis(2));
    }
    bed.settle();

    assert_invariants(&tracer, "chaos run");
    let t = tracer.borrow();
    let drops = t.drops();
    assert!(
        drops.get(psd::sim::DropReason::FaultInjected) + drops.get(psd::sim::DropReason::WireLoss)
            > 0,
        "armed plane at 10%/5% over 40 packets should have injected at least once"
    );
}

/// The Table 5 scale workload under tracing: thousands of spans across
/// mixed UDP/TCP sessions, every one accounted for.
#[test]
fn scale_workload_satisfies_invariants() {
    let tracer = Tracer::shared();
    let spec = WorkloadSpec::at_scale(24, 64, 42);
    let r = session_scaling_with(
        SystemConfig::LibraryShmIpf,
        Platform::DecStation5000_200,
        DemuxStrategy::Mpf,
        &spec,
        false,
        Some(&tracer),
    );
    assert!(r.packets_rx >= 64);
    assert_invariants(&tracer, "scale workload");
    let t = tracer.borrow();
    let (delivered, _, _) = t.terminal_counts();
    assert!(delivered >= r.packets_rx);
}

/// Same seed, same workload → byte-identical Chrome trace document.
/// Also validates the document's framing without a JSON parser: every
/// event object must carry `ph`, `pid` and `ts` fields.
#[test]
fn seeded_rerun_is_byte_identical_chrome_json() {
    let doc = |seed: u64| -> String {
        let (_bed, tracer, _) = traced_udp_run(SystemConfig::LibraryShm, seed, 8, false);
        let mut events = String::new();
        tracer.borrow().chrome_events(0, "rerun-check", &mut events);
        psd::sim::chrome_trace_document(&events)
    };
    let a = doc(77);
    let b = doc(77);
    assert_eq!(a, b, "same-seed trace documents must be byte-identical");
    assert!(a.starts_with("{\"traceEvents\":["));
    assert!(a.trim_end().ends_with("}"));
    let events = a.matches("{\"name\"").count();
    assert!(events > 50, "expected a substantial trace, got {events}");
    for key in ["\"ph\":", "\"pid\":", "\"ts\":"] {
        assert!(a.contains(key), "trace document missing {key}");
    }
}
