//! Batched ≡ unbatched equivalence (the NEWAPI batching contract).
//!
//! The batched NEWAPI (`send_batch` / `send_gso` / `recv_batch`,
//! DESIGN.md §4.2) promises that batching is a *performance* lever,
//! never a semantic one: for every placement and every batch window B,
//! an application sees exactly the bytes, drop taxonomy, and resource
//! state it would have seen unbatched. GRO re-frames wire segments and
//! GSO re-frames send calls, so frame *counts* legitimately differ —
//! what must not differ is anything an application can observe through
//! the socket API.
//!
//! `run_scenario` drives one mixed workload — a 12 KB TCP transfer
//! (multi-MSS, so slow-start bursts give GRO real back-to-back
//! segments to coalesce) plus a kernel-resident UDP flow fed by one
//! GSO super-descriptor and a batched datagram train — and distills an
//! [`Outcome`]: delivered byte streams, datagram count, drop-counter
//! taxonomy, post-teardown session/port leak counts, packet-trace
//! invariant violations, and traced drop terminals. Every B ∈ {4, 16,
//! 64} run must reproduce the B = 1 outcome field for field, across
//! ≥ 8 seeds × the three library placements.
//!
//! Vacuity guards make the equivalence non-trivial: every batched run
//! must show GRO merges, GSO super-segmentation, and header-only
//! deliveries actually firing — a harness in which the mechanisms
//! never engage proves nothing.
//!
//! A separate test pins the doorbell-amortization arithmetic: for a
//! burst of P datagrams the receive kernel charges *exactly*
//! ⌈P / B⌉ session ring crossings, including the final partial window
//! (P = 50 is divisible by no B > 2 under test).

mod common;

use common::{run_until, tcp_client};
use psd::core::{AppHandle, AppLib, Fd, FdEventFn};
use psd::filter::PlacementPolicy;
use psd::kernel::BatchConfig;
use psd::netstack::{InetAddr, SockEvent, SocketError};
use psd::server::Proto;
use psd::sim::{Platform, Rng, SimTime};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::rc::Rc;

/// The library placements — the only configurations that export the
/// batched NEWAPI (server placements have no shared ring to batch).
const CONFIGS: [SystemConfig; 3] = [
    SystemConfig::LibraryIpc,
    SystemConfig::LibraryShm,
    SystemConfig::LibraryShmIpf,
];

/// Batch windows under test; 1 is the baseline every other window must
/// reproduce.
const BATCHES: [usize; 4] = [1, 4, 16, 64];

/// Equivalence seeds per configuration.
const SEEDS: usize = 8;

const TCP_PORT: u16 = 80;
const UDP_PORT: u16 = 7000;
/// TCP transfer length: > 8 MSS, so slow start produces back-to-back
/// full-MSS pure-ACK segments for GRO to coalesce.
const TCP_LEN: usize = 12_288;
/// Descriptor size for the TCP `send_batch` chunks.
const TCP_CHUNK: usize = 4_096;
/// GSO super-descriptor: segmented into eight 256-byte datagrams.
const GSO_LEN: usize = 2_048;
const GSO_SEG: usize = 256;
/// Batched datagram train after the super-descriptor.
const SMALL_COUNT: usize = 16;
const SMALL_LEN: usize = 128;
const UDP_DATAGRAMS: usize = GSO_LEN / GSO_SEG + SMALL_COUNT;

fn batch_cfg(b: usize) -> BatchConfig {
    if b == 1 {
        BatchConfig::unbatched()
    } else {
        BatchConfig::full(b)
    }
}

/// Everything an application (or operator) can observe from one
/// scenario run. Fields compared against the B = 1 baseline must be
/// identical; the vacuity counters are checked per-variant instead.
#[derive(Debug)]
struct Outcome {
    /// Bytes the server read from the TCP stream, in order.
    tcp_bytes: Vec<u8>,
    /// UDP payloads in delivery order, concatenated.
    udp_bytes: Vec<u8>,
    /// Datagrams the server received.
    udp_datagrams: usize,
    /// Every UDP descriptor carried the kernel-resident marking.
    udp_all_resident: bool,
    /// Drop taxonomy digest: per-reason kernel counters and stack drop
    /// counters on both hosts.
    drops: String,
    /// Post-teardown leak counts: open descriptors per app and
    /// installed session filters (the kernel-side port table) per host.
    leaks: (usize, usize, usize, usize),
    /// Packet-trace invariant violations (must be empty everywhere).
    invariants: Vec<String>,
    /// Traced drop terminals.
    dropped_terminals: u64,
    /// GRO merges observed on the receiving host (vacuity).
    gro_merged: u64,
    /// GSO super-descriptors / segments emitted by the client stack
    /// (vacuity).
    gso_supers: u64,
    gso_segments: u64,
    /// Header-only ring deliveries on the receiving host (vacuity).
    header_only: u64,
}

/// Accumulating TCP sink: drains with `recv_batch` on every readable
/// edge and closes on peer close.
fn batch_tcp_server(bed: &mut TestBed, app: &AppHandle, port: u16) -> (Rc<RefCell<Vec<u8>>>, Fd) {
    let rx = Rc::new(RefCell::new(Vec::new()));
    let lfd = AppLib::socket(app, &mut bed.sim, Proto::Tcp);
    AppLib::bind(app, &mut bed.sim, lfd, port).expect("tcp bind");
    AppLib::listen(app, &mut bed.sim, lfd, 8).expect("listen");
    let app2 = app.clone();
    let rx2 = rx.clone();
    let conn_handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if matches!(ev, SockEvent::Readable | SockEvent::PeerClosed) {
                loop {
                    match AppLib::recv_batch(&app2, sim, fd, 8, 4096, false) {
                        Ok(descs) if descs.is_empty() => break,
                        Ok(descs) => {
                            for d in descs {
                                rx2.borrow_mut().extend_from_slice(&d.chain.to_vec());
                            }
                        }
                        Err(_) => break,
                    }
                }
                if ev == SockEvent::PeerClosed {
                    AppLib::close(&app2, sim, fd);
                }
            }
        },
    ));
    let app3 = app.clone();
    let listen_handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                while let Ok(conn) = AppLib::accept(&app3, sim, fd) {
                    app3.borrow_mut()
                        .set_event_handler(conn, conn_handler.clone());
                }
            }
        },
    ));
    app.borrow_mut().set_event_handler(lfd, listen_handler);
    (rx, lfd)
}

/// Sends every descriptor in `bufs`, advancing past partial accepts
/// and backing off on a full send buffer.
fn send_all(bed: &mut TestBed, app: &AppHandle, fd: Fd, bufs: &[Rc<Vec<u8>>], what: &str) {
    let mut next = 0;
    let mut stalls = 0;
    while next < bufs.len() {
        match AppLib::send_batch(app, &mut bed.sim, fd, &bufs[next..]) {
            Ok(n) if n > 0 => next += n,
            Ok(_) | Err(SocketError::WouldBlock) => {
                stalls += 1;
                assert!(stalls < 10_000, "{what}: send_batch never drained");
                bed.run_for(SimTime::from_millis(2));
            }
            Err(e) => panic!("{what}: send_batch failed: {e:?}"),
        }
    }
}

/// Runs the mixed TCP + UDP workload under one (config, seed, B) cell
/// and distills the observable outcome.
fn run_scenario(config: SystemConfig, seed: u64, b: usize) -> Outcome {
    let ctx = format!("{} seed={seed} B={b}", config.label());
    let mut bed = TestBed::new(config, Platform::DecStation5000_200, seed);
    bed.set_batch_config(batch_cfg(b));
    bed.set_placement_policy(Some(
        PlacementPolicy::new().resident_ports(UDP_PORT, UDP_PORT),
    ));
    let tracer = bed.attach_tracer();

    // --- server (host 1): TCP accumulator + resident UDP drain ---
    let srv = bed.hosts[1].spawn_app();
    let (tcp_rx, lfd) = batch_tcp_server(&mut bed, &srv, TCP_PORT);
    let udp_rx: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
    let udp_count = Rc::new(RefCell::new(0usize));
    let udp_resident = Rc::new(RefCell::new(true));
    let ufd_srv = AppLib::socket(&srv, &mut bed.sim, Proto::Udp);
    AppLib::bind(&srv, &mut bed.sim, ufd_srv, UDP_PORT).expect("udp bind");
    {
        let (srv2, rx2, n2, res2) = (
            srv.clone(),
            udp_rx.clone(),
            udp_count.clone(),
            udp_resident.clone(),
        );
        let handler: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                if ev == SockEvent::Readable {
                    // The pull pays the deferred body copy; the bytes
                    // must be the full datagram regardless of placement.
                    while let Ok(descs) = AppLib::recv_batch(&srv2, sim, fd, 16, 1 << 16, true) {
                        if descs.is_empty() {
                            break;
                        }
                        for d in descs {
                            *res2.borrow_mut() &= d.kernel_resident;
                            rx2.borrow_mut().extend_from_slice(&d.chain.to_vec());
                            *n2.borrow_mut() += 1;
                        }
                    }
                }
            },
        ));
        srv.borrow_mut().set_event_handler(ufd_srv, handler);
    }

    // --- client (host 0) ---
    let cli = bed.hosts[0].spawn_app();
    let server_ip = bed.hosts[1].ip;
    bed.settle();
    let client = tcp_client(&mut bed, &cli, InetAddr::new(server_ip, TCP_PORT));
    assert!(
        run_until(&mut bed, SimTime::from_secs(5), || *client
            .connected
            .borrow()),
        "{ctx}: TCP connect timed out"
    );

    // TCP transfer: a seeded pattern in shared descriptors.
    let mut rng = Rng::new(seed ^ 0xBA7C);
    let pattern: Vec<u8> = (0..TCP_LEN).map(|_| rng.next_u64() as u8).collect();
    let chunks: Vec<Rc<Vec<u8>>> = pattern
        .chunks(TCP_CHUNK)
        .map(|c| Rc::new(c.to_vec()))
        .collect();
    send_all(&mut bed, &cli, client.fd, &chunks, &ctx);
    assert!(
        run_until(&mut bed, SimTime::from_secs(20), || tcp_rx.borrow().len()
            >= TCP_LEN),
        "{ctx}: TCP transfer stalled at {}/{TCP_LEN}",
        tcp_rx.borrow().len()
    );
    AppLib::close(&cli, &mut bed.sim, client.fd);
    bed.run_for(SimTime::from_millis(500));

    // UDP: one GSO super-descriptor, then a batched datagram train,
    // into the kernel-resident flow.
    let ufd = AppLib::socket(&cli, &mut bed.sim, Proto::Udp);
    AppLib::bind(&cli, &mut bed.sim, ufd, 9100).expect("udp bind");
    AppLib::connect(
        &cli,
        &mut bed.sim,
        ufd,
        InetAddr::new(bed.hosts[1].ip, UDP_PORT),
    )
    .expect("udp connect");
    bed.settle();
    let gso_data: Rc<Vec<u8>> = Rc::new((0..GSO_LEN).map(|_| rng.next_u64() as u8).collect());
    AppLib::send_gso(&cli, &mut bed.sim, ufd, gso_data.clone(), GSO_SEG)
        .unwrap_or_else(|e| panic!("{ctx}: send_gso failed: {e:?}"));
    assert!(
        run_until(&mut bed, SimTime::from_secs(5), || *udp_count.borrow()
            >= GSO_LEN / GSO_SEG),
        "{ctx}: GSO datagrams lost ({} arrived)",
        *udp_count.borrow()
    );
    let smalls: Vec<Rc<Vec<u8>>> = (0..SMALL_COUNT)
        .map(|_| Rc::new((0..SMALL_LEN).map(|_| rng.next_u64() as u8).collect()))
        .collect();
    send_all(&mut bed, &cli, ufd, &smalls, &ctx);
    assert!(
        run_until(&mut bed, SimTime::from_secs(5), || *udp_count.borrow()
            >= UDP_DATAGRAMS),
        "{ctx}: datagram train lost ({} arrived)",
        *udp_count.borrow()
    );
    let mut udp_expect = gso_data.to_vec();
    for s in &smalls {
        udp_expect.extend_from_slice(s);
    }

    // --- vacuity counters, read before teardown ---
    let k1 = bed.hosts[1].kernel.borrow().stats();
    let (gso_supers, gso_segments) = {
        let stack = cli.borrow().stack().expect("library client stack");
        let s = stack.borrow();
        (s.stats.gso_supers, s.stats.gso_segments)
    };

    // --- teardown: close everything, drain, count leaks ---
    AppLib::close(&cli, &mut bed.sim, ufd);
    AppLib::close(&srv, &mut bed.sim, ufd_srv);
    AppLib::close(&srv, &mut bed.sim, lfd);
    bed.run_for(SimTime::from_secs(2));
    let leaks = (
        cli.borrow().open_fds(),
        srv.borrow().open_fds(),
        bed.hosts[0].kernel.borrow().filters_installed(),
        bed.hosts[1].kernel.borrow().filters_installed(),
    );

    let drops = {
        let k0 = bed.hosts[0].kernel.borrow().stats();
        let k1 = bed.hosts[1].kernel.borrow().stats();
        let s0 = cli.borrow().stack().expect("client stack");
        let s1 = srv.borrow().stack().expect("server stack");
        format!(
            "kernel0={:?} kernel1={:?} stack0={:?} stack1={:?}",
            k0.drops,
            k1.drops,
            s0.borrow().stats.drops,
            s1.borrow().stats.drops
        )
    };
    let (invariants, dropped_terminals) = {
        let t = tracer.borrow();
        (t.check_invariants(), t.terminal_counts().2)
    };

    Outcome {
        tcp_bytes: {
            let got = tcp_rx.borrow().clone();
            assert_eq!(got, pattern, "{ctx}: TCP byte stream corrupted");
            got
        },
        udp_bytes: {
            let got = udp_rx.borrow().clone();
            assert_eq!(got, udp_expect, "{ctx}: UDP byte stream corrupted");
            got
        },
        udp_datagrams: {
            let n = *udp_count.borrow();
            n
        },
        udp_all_resident: {
            let r = *udp_resident.borrow();
            r
        },
        drops,
        leaks,
        invariants,
        dropped_terminals,
        gro_merged: k1.gro_merged,
        gso_supers,
        gso_segments,
        header_only: k1.header_only_deliveries,
    }
}

/// Compares a batched outcome to the unbatched baseline and enforces
/// the vacuity guards.
fn assert_equivalent(config: SystemConfig, seed: u64, b: usize, base: &Outcome, got: &Outcome) {
    let ctx = format!("{} seed={seed} B={b}", config.label());
    assert!(
        got.invariants.is_empty(),
        "{ctx}: trace invariants violated: {:?}",
        got.invariants
    );
    assert_eq!(got.tcp_bytes, base.tcp_bytes, "{ctx}: TCP stream differs");
    assert_eq!(got.udp_bytes, base.udp_bytes, "{ctx}: UDP stream differs");
    assert_eq!(
        got.udp_datagrams, base.udp_datagrams,
        "{ctx}: datagram count differs"
    );
    assert!(got.udp_all_resident, "{ctx}: resident marking lost");
    assert_eq!(got.drops, base.drops, "{ctx}: drop taxonomy differs");
    assert_eq!(got.leaks, base.leaks, "{ctx}: leak counts differ");
    assert_eq!(
        got.dropped_terminals, base.dropped_terminals,
        "{ctx}: traced drop terminals differ"
    );
    // Vacuity: the mechanisms under test must actually have fired.
    assert!(got.gro_merged > 0, "{ctx}: GRO never coalesced (vacuous)");
    assert!(got.gso_supers > 0, "{ctx}: GSO never segmented (vacuous)");
    assert_eq!(
        got.gso_segments,
        (GSO_LEN / GSO_SEG) as u64,
        "{ctx}: GSO segment count"
    );
    assert!(
        got.header_only > 0,
        "{ctx}: no header-only deliveries (vacuous)"
    );
}

fn equivalence_for(config: SystemConfig) {
    let mut root = Rng::new(0x93_0009);
    for _ in 0..SEEDS {
        let seed = root.next_u64();
        let base = run_scenario(config, seed, 1);
        assert!(
            base.invariants.is_empty(),
            "{} seed={seed} B=1: trace invariants violated: {:?}",
            config.label(),
            base.invariants
        );
        // The baseline must not engage GSO: unbatched configs fall back
        // to per-datagram sends (and still deliver identical bytes).
        assert_eq!(
            base.gso_supers,
            0,
            "{} seed={seed}: baseline ran GSO",
            config.label()
        );
        for &b in &BATCHES[1..] {
            let got = run_scenario(config, seed, b);
            assert_equivalent(config, seed, b, &base, &got);
        }
    }
}

#[test]
fn batched_equals_unbatched_library_ipc() {
    equivalence_for(SystemConfig::LibraryIpc);
}

#[test]
fn batched_equals_unbatched_library_shm() {
    equivalence_for(SystemConfig::LibraryShm);
}

#[test]
fn batched_equals_unbatched_library_shm_ipf() {
    equivalence_for(SystemConfig::LibraryShmIpf);
}

// ---------------------------------------------------------------------
// Doorbell-amortization arithmetic
// ---------------------------------------------------------------------

/// Sends `packets` datagrams through one session endpoint and returns
/// the session ring crossings the receive kernel charged.
fn crossings_for(config: SystemConfig, packets: usize, b: usize) -> u64 {
    let mut bed = TestBed::new(config, Platform::DecStation5000_200, 0x50);
    bed.set_batch_config(BatchConfig {
        batch: b,
        gro: false,
        gso: false,
    });
    let tx_app = bed.hosts[0].spawn_app();
    let tx = AppLib::socket(&tx_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&tx_app, &mut bed.sim, tx, 9000).expect("tx bind");
    let rx_app = bed.hosts[1].spawn_app();
    let rx = AppLib::socket(&rx_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&rx_app, &mut bed.sim, rx, 6000).expect("rx bind");
    bed.settle();
    // Warm ARP on an unclaimed port so the burst is steady-state.
    AppLib::sendto(
        &tx_app,
        &mut bed.sim,
        tx,
        b"warm",
        Some(InetAddr::new(bed.hosts[1].ip, 9)),
    )
    .expect("warm");
    bed.settle();
    AppLib::connect(
        &tx_app,
        &mut bed.sim,
        tx,
        InetAddr::new(bed.hosts[1].ip, 6000),
    )
    .expect("connect");
    bed.settle();

    let k0 = bed.hosts[1].kernel.borrow().stats();
    let bufs: Vec<Rc<Vec<u8>>> = (0..packets).map(|i| Rc::new(vec![i as u8; 64])).collect();
    for group in bufs.chunks(b) {
        send_all(&mut bed, &tx_app, tx, group, "burst");
        // Pace above the 10 Mbit serialization so the wire never backs
        // up; the doorbell accounting is count-based, not time-based.
        bed.run_for(SimTime::from_micros(100 * group.len() as u64));
    }
    bed.settle();
    let mut got = 0usize;
    loop {
        let descs =
            AppLib::recv_batch(&rx_app, &mut bed.sim, rx, 64, 1 << 16, false).expect("recv");
        if descs.is_empty() {
            break;
        }
        got += descs.len();
    }
    bed.settle();
    let k1 = bed.hosts[1].kernel.borrow().stats();
    assert_eq!(
        got,
        packets,
        "{} B={b}: burst must be lossless",
        config.label()
    );
    assert_eq!(
        k1.rx_session - k0.rx_session,
        packets as u64,
        "{} B={b}: delivered frames",
        config.label()
    );
    k1.rx_session_crossings - k0.rx_session_crossings
}

#[test]
fn crossings_scale_as_ceiling_of_packets_over_batch() {
    // P = 50 is not divisible by any window > 2 under test, so the
    // final partial window pins the ceiling (not floor) semantics.
    const P: usize = 50;
    for config in CONFIGS {
        for &b in &BATCHES {
            let want = (P + b - 1) / b;
            assert_eq!(
                crossings_for(config, P, b),
                want as u64,
                "{} B={b}: crossings must be ceil({P}/{b})",
                config.label()
            );
        }
    }
}
