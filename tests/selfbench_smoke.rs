//! Tier-1 smoke test for the simulator self-benchmark: two same-seed
//! `--quick` runs must be deterministic in every simulated quantity
//! (event counts, packet counts, placements), and their JSON artifacts
//! must be byte-identical once the wall-clock-derived fields are
//! normalized away. The artifact must also validate against the
//! checked-in `BENCH.schema.json`, which is what CI uploads and gates
//! on.

use psd::bench::selfbench;

#[test]
fn quick_selfbench_is_deterministic_and_schema_valid() {
    let a = selfbench::run(true);
    let b = selfbench::run(true);

    // Same seed, same simulated work — down to the last event.
    assert_eq!(
        a.deterministic_signature(),
        b.deterministic_signature(),
        "two same-seed quick runs disagreed on simulated counts"
    );

    // Artifacts agree byte-for-byte once wall-clock fields are zeroed.
    let ja = a.to_json();
    let jb = b.to_json();
    assert_eq!(
        selfbench::normalized_text(&ja),
        selfbench::normalized_text(&jb),
        "normalized artifacts differ between same-seed runs"
    );

    // The artifact CI archives must match the committed schema.
    let schema = include_str!("../BENCH.schema.json");
    selfbench::validate_artifact(&ja, schema)
        .expect("artifact validates against BENCH.schema.json");

    // Sanity: quick mode still measures both engines and real packets.
    assert!(!a.baseline.is_empty() && !a.wheel.is_empty());
    assert!(a.packet.iter().all(|r| r.packets_rx > 0));
    assert!(
        a.speedup_at(65_536).is_some(),
        "64k row present for the CI gate"
    );
}

#[test]
fn committed_artifact_matches_schema_and_gate_shape() {
    // The committed full-run artifact must stay parseable, schema-valid,
    // and must contain the 64k wheel row the CI regression gate reads.
    let text = include_str!("../BENCH_6.json");
    let artifact = psd::bench::json::Json::parse(text).expect("BENCH_6.json parses");
    let schema = include_str!("../BENCH.schema.json");
    selfbench::validate_artifact(&artifact, schema).expect("BENCH_6.json validates");

    let speedup = artifact
        .get("engine")
        .and_then(|e| e.get("speedup"))
        .and_then(psd::bench::json::Json::as_f64)
        .expect("committed artifact records the engine speedup");
    assert!(
        speedup >= 3.0,
        "committed speedup {speedup:.2}x below the 3x acceptance floor"
    );

    let wheel_64k = artifact
        .get("engine")
        .and_then(|e| e.get("wheel"))
        .and_then(psd::bench::json::Json::as_arr)
        .map(|rows| {
            rows.iter()
                .any(|r| r.get("timers").and_then(psd::bench::json::Json::as_f64) == Some(65_536.0))
        })
        .unwrap_or(false);
    assert!(
        wheel_64k,
        "committed artifact has the 64k wheel row CI gates on"
    );
}
