//! The cooperative `select` (§3.2) and the packet-filter security
//! property (§3.4).

mod common;

use common::{run_until, udp_echo_server};
use psd::core::{AppLib, Fd, SelectOutcome};
use psd::netstack::InetAddr;
use psd::server::Proto;
use psd::sim::{Platform, SimTime};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::rc::Rc;

fn lib_bed(seed: u64) -> TestBed {
    TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, seed)
}

#[test]
fn select_on_local_descriptors_does_not_involve_the_server() {
    let mut bed = lib_bed(61);
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let app = bed.hosts[0].spawn_app();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd, 9000).unwrap();
    AppLib::connect(&app, &mut bed.sim, fd, InetAddr::new(bed.hosts[1].ip, 53)).unwrap();
    bed.settle();
    AppLib::sendto(&app, &mut bed.sim, fd, b"warm", None).unwrap();
    bed.settle();
    let mut buf = [0u8; 16];
    let _ = AppLib::recvfrom(&app, &mut bed.sim, fd, &mut buf);

    let rpcs_before = app.borrow().stats.control_rpcs;
    // Select, then make data arrive; the wait must complete without any
    // server interaction ("In cases where all descriptors are managed
    // by the application, the operating system is not involved").
    let outcome: Rc<RefCell<Option<SelectOutcome>>> = Rc::new(RefCell::new(None));
    let o2 = outcome.clone();
    AppLib::select(
        &app,
        &mut bed.sim,
        vec![fd],
        vec![],
        Some(SimTime::from_secs(5)),
        Box::new(move |_sim, o| *o2.borrow_mut() = Some(o)),
    );
    AppLib::sendto(&app, &mut bed.sim, fd, b"trigger", None).unwrap();
    assert!(run_until(&mut bed, SimTime::from_secs(10), || {
        outcome.borrow().is_some()
    }));
    let o = outcome.borrow().clone().unwrap();
    assert_eq!(o.readable, vec![fd]);
    assert!(!o.timed_out);
    assert_eq!(
        app.borrow().stats.control_rpcs,
        rpcs_before,
        "local-only select must not call the server"
    );
}

#[test]
fn select_timeout_fires_when_nothing_is_ready() {
    let mut bed = lib_bed(63);
    let app = bed.hosts[0].spawn_app();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd, 9100).unwrap();
    let outcome: Rc<RefCell<Option<SelectOutcome>>> = Rc::new(RefCell::new(None));
    let o2 = outcome.clone();
    AppLib::select(
        &app,
        &mut bed.sim,
        vec![fd],
        vec![],
        Some(SimTime::from_millis(100)),
        Box::new(move |_sim, o| *o2.borrow_mut() = Some(o)),
    );
    assert!(run_until(&mut bed, SimTime::from_secs(2), || {
        outcome.borrow().is_some()
    }));
    assert!(outcome.borrow().as_ref().unwrap().timed_out);
}

#[test]
fn mixed_select_wakes_via_proxy_status() {
    // One migrated (local) descriptor and one server-resident
    // descriptor force the cooperative path: the server's select must
    // be woken by the library's proxy_status report when local data
    // arrives.
    let mut bed = lib_bed(67);
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let app = bed.hosts[0].spawn_app();
    // Local descriptor.
    let local_fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, local_fd, 9000).unwrap();
    AppLib::connect(
        &app,
        &mut bed.sim,
        local_fd,
        InetAddr::new(bed.hosts[1].ip, 53),
    )
    .unwrap();
    // Server-resident descriptor: a TCP listener stays in the server.
    let listener = AppLib::socket(&app, &mut bed.sim, Proto::Tcp);
    AppLib::bind(&app, &mut bed.sim, listener, 2323).unwrap();
    AppLib::listen(&app, &mut bed.sim, listener, 2).unwrap();
    bed.settle();

    let outcome: Rc<RefCell<Option<SelectOutcome>>> = Rc::new(RefCell::new(None));
    let o2 = outcome.clone();
    AppLib::select(
        &app,
        &mut bed.sim,
        vec![local_fd, listener],
        vec![],
        Some(SimTime::from_secs(30)),
        Box::new(move |_sim, o| *o2.borrow_mut() = Some(o)),
    );
    let status_before = app.borrow().stats.status_reports;
    // Trigger the local descriptor.
    AppLib::sendto(&app, &mut bed.sim, local_fd, b"trigger", None).unwrap();
    assert!(run_until(&mut bed, SimTime::from_secs(30), || {
        outcome.borrow().is_some()
    }));
    let o = outcome.borrow().clone().unwrap();
    assert!(o.readable.contains(&local_fd));
    assert!(!o.timed_out);
    assert!(
        app.borrow().stats.status_reports > status_before,
        "the library must have reported the status change (proxy_status)"
    );
}

#[test]
fn select_wakes_on_server_resident_listener() {
    // The inverse: the watched event happens on the server-resident
    // descriptor (an incoming connection).
    let mut bed = lib_bed(69);
    let app = bed.hosts[1].spawn_app();
    let listener = AppLib::socket(&app, &mut bed.sim, Proto::Tcp);
    AppLib::bind(&app, &mut bed.sim, listener, 80).unwrap();
    AppLib::listen(&app, &mut bed.sim, listener, 2).unwrap();
    // Also watch a quiet local UDP socket to force the mixed path.
    let quiet = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, quiet, 9500).unwrap();

    let outcome: Rc<RefCell<Option<SelectOutcome>>> = Rc::new(RefCell::new(None));
    let o2 = outcome.clone();
    AppLib::select(
        &app,
        &mut bed.sim,
        vec![listener, quiet],
        vec![],
        Some(SimTime::from_secs(30)),
        Box::new(move |_sim, o| *o2.borrow_mut() = Some(o)),
    );
    // A client connects from the other host.
    let client_app = bed.hosts[0].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let _client = common::tcp_client(&mut bed, &client_app, dst);
    assert!(run_until(&mut bed, SimTime::from_secs(30), || {
        outcome.borrow().is_some()
    }));
    let o = outcome.borrow().clone().unwrap();
    assert!(o.readable.contains(&listener), "listener became acceptable");
}

#[test]
fn packet_filters_isolate_applications() {
    // Two applications on the same host, each with its own UDP session.
    // Traffic for one must never reach the other's stack (§3.4).
    let mut bed = lib_bed(71);
    let app_a = bed.hosts[0].spawn_app();
    let app_b = bed.hosts[0].spawn_app();
    let fd_a = AppLib::socket(&app_a, &mut bed.sim, Proto::Udp);
    let fd_b = AppLib::socket(&app_b, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app_a, &mut bed.sim, fd_a, 1000).unwrap();
    AppLib::bind(&app_b, &mut bed.sim, fd_b, 2000).unwrap();

    // A sender on the other host sprays both ports.
    let sender = bed.hosts[1].spawn_app();
    let sfd = AppLib::socket(&sender, &mut bed.sim, Proto::Udp);
    AppLib::bind(&sender, &mut bed.sim, sfd, 3000).unwrap();
    bed.settle();
    // Warm the ARP path (the first cold-cache datagram may drop, which
    // is legitimate UDP behaviour).
    AppLib::sendto(
        &sender,
        &mut bed.sim,
        sfd,
        b"warm",
        Some(InetAddr::new(bed.hosts[0].ip, 9)),
    )
    .unwrap();
    bed.settle();
    for _ in 0..3 {
        AppLib::sendto(
            &sender,
            &mut bed.sim,
            sfd,
            b"for A",
            Some(InetAddr::new(bed.hosts[0].ip, 1000)),
        )
        .unwrap();
        AppLib::sendto(
            &sender,
            &mut bed.sim,
            sfd,
            b"for B",
            Some(InetAddr::new(bed.hosts[0].ip, 2000)),
        )
        .unwrap();
        bed.settle();
    }
    let stack_a = app_a.borrow().stack().unwrap();
    let stack_b = app_b.borrow().stack().unwrap();
    assert_eq!(stack_a.borrow().stats.udp_in, 3, "A sees exactly its own");
    assert_eq!(stack_b.borrow().stats.udp_in, 3, "B sees exactly its own");
    // And the frames really were demultiplexed by the kernel filter.
    let kstats = bed.hosts[0].kernel.borrow().stats();
    assert!(kstats.rx_session >= 6);
}

#[test]
fn closed_session_filters_are_removed() {
    let mut bed = lib_bed(73);
    let app = bed.hosts[0].spawn_app();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd, 1000).unwrap();
    bed.settle();
    AppLib::close(&app, &mut bed.sim, fd);
    bed.settle();
    // Traffic to the old port now falls to the server (which answers
    // ICMP port unreachable), not to the application.
    let sender = bed.hosts[1].spawn_app();
    let sfd = AppLib::socket(&sender, &mut bed.sim, Proto::Udp);
    AppLib::bind(&sender, &mut bed.sim, sfd, 3000).unwrap();
    bed.settle();
    // Warm the ARP path first (a cold-cache datagram may drop).
    AppLib::sendto(
        &sender,
        &mut bed.sim,
        sfd,
        b"warm",
        Some(InetAddr::new(bed.hosts[0].ip, 9)),
    )
    .unwrap();
    bed.settle();
    let before_session = bed.hosts[0].kernel.borrow().stats().rx_session;
    AppLib::sendto(
        &sender,
        &mut bed.sim,
        sfd,
        b"ghost",
        Some(InetAddr::new(bed.hosts[0].ip, 1000)),
    )
    .unwrap();
    bed.settle();
    let k = bed.hosts[0].kernel.borrow().stats();
    assert_eq!(
        k.rx_session, before_session,
        "no session filter may claim traffic for a closed session"
    );
    let os_stack = bed.hosts[0].server.as_ref().unwrap().borrow().stack();
    assert!(os_stack.borrow().stats.no_socket >= 1);
}

#[test]
fn fd_events_route_to_correct_descriptor() {
    // Regression guard for the sock→fd routing table: two sockets in
    // one app, events must not cross.
    let mut bed = lib_bed(79);
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let app = bed.hosts[0].spawn_app();
    let fd1 = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    let fd2 = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd1, 9001).unwrap();
    AppLib::bind(&app, &mut bed.sim, fd2, 9002).unwrap();
    let hits: Rc<RefCell<Vec<Fd>>> = Rc::new(RefCell::new(Vec::new()));
    for fd in [fd1, fd2] {
        let hits = hits.clone();
        app.borrow_mut().set_event_handler(
            fd,
            Rc::new(RefCell::new(
                move |_sim: &mut psd::sim::Sim, fd: Fd, ev: psd::netstack::SockEvent| {
                    if ev == psd::netstack::SockEvent::Readable {
                        hits.borrow_mut().push(fd);
                    }
                },
            )),
        );
    }
    // Warm the path: connect prewarms the metastate cache.
    AppLib::connect(&app, &mut bed.sim, fd2, InetAddr::new(bed.hosts[1].ip, 53)).unwrap();
    bed.settle();
    AppLib::sendto(&app, &mut bed.sim, fd2, b"only fd2 expects a reply", None).unwrap();
    bed.settle();
    assert_eq!(hits.borrow().as_slice(), &[fd2]);
}
