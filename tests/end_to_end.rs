//! End-to-end transfers in every system configuration on both
//! platforms: the same application code must behave identically under
//! the in-kernel, server-based, and all library architectures
//! ("source-level compatibility with existing protocol clients").

mod common;

use common::{run_until, tcp_client, tcp_echo_server, udp_echo_server};
use psd::core::{AppLib, Fd, FdEventFn};
use psd::netstack::{InetAddr, SockEvent};
use psd::server::Proto;
use psd::sim::{Platform, SimTime};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::rc::Rc;

fn all_configs() -> Vec<(SystemConfig, Platform)> {
    let mut v = Vec::new();
    for platform in [Platform::DecStation5000_200, Platform::Gateway486] {
        for config in SystemConfig::for_platform(platform) {
            v.push((config, platform));
        }
    }
    v
}

#[test]
fn tcp_request_response_all_configs() {
    for (config, platform) in all_configs() {
        let mut bed = TestBed::new(config, platform, 11);
        let server_app = bed.hosts[1].spawn_app();
        let echoed = tcp_echo_server(&mut bed, &server_app, 80);
        let client_app = bed.hosts[0].spawn_app();
        let dst = InetAddr::new(bed.hosts[1].ip, 80);
        let client = tcp_client(&mut bed, &client_app, dst);

        assert!(
            run_until(&mut bed, SimTime::from_secs(10), || *client
                .connected
                .borrow()),
            "{}: connect failed",
            config.label()
        );
        AppLib::send(&client_app, &mut bed.sim, client.fd, b"request payload").unwrap();
        assert!(
            run_until(&mut bed, SimTime::from_secs(10), || {
                client.replies.borrow().len() >= 15
            }),
            "{} on {}: no echo",
            config.label(),
            platform.label()
        );
        assert_eq!(client.replies.borrow().as_slice(), b"request payload");
        assert_eq!(*echoed.borrow(), 15);
        assert!(client.error.borrow().is_none());
    }
}

#[test]
fn udp_round_trip_all_configs() {
    for (config, platform) in all_configs() {
        let mut bed = TestBed::new(config, platform, 13);
        let server_app = bed.hosts[1].spawn_app();
        udp_echo_server(&mut bed, &server_app, 53);
        let client_app = bed.hosts[0].spawn_app();
        let dst = InetAddr::new(bed.hosts[1].ip, 53);

        let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
        AppLib::bind(&client_app, &mut bed.sim, fd, 9000).unwrap();
        AppLib::connect(&client_app, &mut bed.sim, fd, dst).unwrap();
        let got: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        {
            let app = client_app.clone();
            let got = got.clone();
            let handler: FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                    if ev == SockEvent::Readable {
                        let mut buf = [0u8; 64];
                        while let Ok((n, from)) = AppLib::recvfrom(&app, sim, fd, &mut buf) {
                            assert_eq!(from.port, 53);
                            got.borrow_mut().extend_from_slice(&buf[..n]);
                        }
                    }
                },
            ));
            client_app.borrow_mut().set_event_handler(fd, handler);
        }
        bed.settle();
        AppLib::sendto(&client_app, &mut bed.sim, fd, b"dns-ish query", None).unwrap();
        let ok = run_until(&mut bed, SimTime::from_secs(10), || {
            !got.borrow().is_empty()
        });
        assert!(
            ok,
            "{} on {}: no UDP echo",
            config.label(),
            platform.label()
        );
        assert_eq!(got.borrow().as_slice(), b"dns-ish query");
    }
}

#[test]
fn bulk_transfer_integrity_all_decstation_configs() {
    // A 256 KB transfer with patterned data must arrive intact in every
    // configuration (integrity, not just byte counts).
    for config in SystemConfig::for_platform(Platform::DecStation5000_200) {
        let mut bed = TestBed::new(config, Platform::DecStation5000_200, 17);
        let server_app = bed.hosts[1].spawn_app();
        let received: Rc<RefCell<Vec<u8>>> = Rc::new(RefCell::new(Vec::new()));
        // Sink server: accumulate everything.
        {
            let lfd = AppLib::socket(&server_app, &mut bed.sim, Proto::Tcp);
            AppLib::bind(&server_app, &mut bed.sim, lfd, 9).unwrap();
            AppLib::listen(&server_app, &mut bed.sim, lfd, 2).unwrap();
            let app = server_app.clone();
            let rec = received.clone();
            let conn_app = server_app.clone();
            let conn_rec = received.clone();
            let conn_handler: FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                    if matches!(ev, SockEvent::Readable | SockEvent::PeerClosed) {
                        let mut buf = vec![0u8; 8192];
                        while let Ok(n) = AppLib::recv(&conn_app, sim, fd, &mut buf) {
                            if n == 0 {
                                break;
                            }
                            conn_rec.borrow_mut().extend_from_slice(&buf[..n]);
                        }
                    }
                },
            ));
            let _ = rec;
            let listen_handler: FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                    if ev == SockEvent::Readable {
                        while let Ok(conn) = AppLib::accept(&app, sim, fd) {
                            app.borrow_mut()
                                .set_event_handler(conn, conn_handler.clone());
                        }
                    }
                },
            ));
            server_app
                .borrow_mut()
                .set_event_handler(lfd, listen_handler);
        }

        let client_app = bed.hosts[0].spawn_app();
        let dst = InetAddr::new(bed.hosts[1].ip, 9);
        let total: usize = 256 * 1024;
        let data: Vec<u8> = (0..total).map(|i| (i % 251) as u8).collect();
        let sent = Rc::new(RefCell::new(0usize));
        let cfd = AppLib::socket(&client_app, &mut bed.sim, Proto::Tcp);
        {
            let app = client_app.clone();
            let sent = sent.clone();
            let data = data.clone();
            let handler: FdEventFn = Rc::new(RefCell::new(
                move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                    if matches!(ev, SockEvent::Connected | SockEvent::Writable) {
                        loop {
                            let off = *sent.borrow();
                            if off >= data.len() {
                                break;
                            }
                            match AppLib::send(
                                &app,
                                sim,
                                fd,
                                &data[off..(off + 8192).min(data.len())],
                            ) {
                                Ok(n) => *sent.borrow_mut() += n,
                                Err(_) => break,
                            }
                        }
                    }
                },
            ));
            client_app.borrow_mut().set_event_handler(cfd, handler);
        }
        AppLib::connect(&client_app, &mut bed.sim, cfd, dst).unwrap();
        let ok = run_until(&mut bed, SimTime::from_secs(60), || {
            received.borrow().len() >= total
        });
        assert!(
            ok,
            "{}: only {} of {} bytes arrived",
            config.label(),
            received.borrow().len(),
            total
        );
        assert_eq!(
            received.borrow().as_slice(),
            data.as_slice(),
            "{}: corruption",
            config.label()
        );
    }
}
