//! Completeness of the drop-reason taxonomy: every way a frame can
//! leave the receive path must surface as a typed `DropReason` (or an
//! explicit absorption) in both the always-on stats counters and the
//! tracer — never as a silent disappearance.
//!
//! Adversarial frames are injected raw onto the wire of an in-kernel
//! testbed, one scenario per reason; a seeded fuzz run then sprays
//! randomized frames (fragments, runts, strays, ARP) and uses the
//! trace invariant checker as the no-silent-drop oracle.

mod common;

use psd::kernel::{Kernel, RxMode};
use psd::netdev::Ethernet;
use psd::sim::{CostModel, Cpu, DropReason, Platform, Rng, Sim, SimTime, TraceHandle, Tracer};
use psd::systems::{SystemConfig, TestBed};
use psd::wire::{
    EtherAddr, EtherType, EthernetHeader, IpProto, Ipv4Header, TcpFlags, TcpHeader, UdpHeader,
    UDP_HDR_LEN,
};
use std::cell::RefCell;
use std::net::Ipv4Addr;
use std::rc::Rc;

const SRC_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const HOST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

/// An in-kernel testbed with a tracer attached; frames injected onto
/// its wire land in host 1's in-kernel stack.
fn traced_bed(seed: u64) -> (TestBed, TraceHandle) {
    let mut bed = TestBed::new(
        SystemConfig::Mach25InKernel,
        Platform::DecStation5000_200,
        seed,
    );
    let tracer = bed.attach_tracer();
    (bed, tracer)
}

fn inject(bed: &mut TestBed, frame: Vec<u8>) {
    let now = bed.sim.now();
    Ethernet::transmit(&bed.ether, &mut bed.sim, now, frame);
    bed.settle();
}

fn eth(ethertype: EtherType) -> Vec<u8> {
    EthernetHeader {
        dst: EtherAddr::local(2),
        src: EtherAddr::local(1),
        ethertype,
    }
    .encode()
    .to_vec()
}

/// A UDP frame to `dst` with a *correct* checksum filled in (the
/// default zero checksum means "not computed" and is never verified).
fn udp_frame(dst: (Ipv4Addr, u16), payload: &[u8]) -> Vec<u8> {
    let ip = Ipv4Header::new(SRC_IP, dst.0, IpProto::Udp, UDP_HDR_LEN + payload.len());
    let mut udp = UdpHeader::new(999, dst.1, payload.len());
    udp.checksum = udp.checksum_for(&ip, std::iter::once(payload));
    let mut f = eth(EtherType::Ipv4);
    f.extend_from_slice(&ip.encode());
    f.extend_from_slice(&udp.encode());
    f.extend_from_slice(payload);
    f
}

/// Asserts that `reason` was counted at least once by the tracer AND
/// by host 1's always-on stack counters (satellite: the two surfaces
/// must agree on existence, not just one of them).
fn assert_stack_drop(bed: &TestBed, tracer: &TraceHandle, reason: DropReason) {
    assert!(
        tracer.borrow().drops().get(reason) >= 1,
        "tracer missed {reason:?}"
    );
    let stack = bed.hosts[1].kern_stack.as_ref().expect("in-kernel stack");
    assert!(
        stack.borrow().stats.drops.get(reason) >= 1,
        "stack stats missed {reason:?}"
    );
}

fn assert_clean(tracer: &TraceHandle) {
    let t = tracer.borrow();
    let violations = t.check_invariants();
    assert!(violations.is_empty(), "{violations:?}");
    let (d, a, r) = t.terminal_counts();
    assert_eq!(d + a + r, t.packet_count() as u64, "silent drop detected");
}

#[test]
fn unsupported_ethertype_is_counted() {
    let (mut bed, tracer) = traced_bed(61);
    let mut f = eth(EtherType::Other(0x86DD));
    f.extend_from_slice(&[0u8; 40]);
    inject(&mut bed, f);
    assert_stack_drop(&bed, &tracer, DropReason::UnsupportedEtherType);
    assert_clean(&tracer);
}

#[test]
fn garbage_ip_payload_is_a_checksum_error() {
    let (mut bed, tracer) = traced_bed(62);
    // Ethernet header parses; the "IPv4 header" behind it is noise.
    let mut f = eth(EtherType::Ipv4);
    f.extend_from_slice(&[0xA5u8; 10]);
    inject(&mut bed, f);
    assert_stack_drop(&bed, &tracer, DropReason::ChecksumError);
    assert_clean(&tracer);
}

#[test]
fn corrupted_udp_checksum_is_counted() {
    let (mut bed, tracer) = traced_bed(63);
    let mut f = udp_frame((HOST_IP, 4321), &[1, 2, 3, 4]);
    let last = f.len() - 1;
    f[last] ^= 0xFF; // flip a payload byte under a now-stale checksum
    inject(&mut bed, f);
    assert_stack_drop(&bed, &tracer, DropReason::ChecksumError);
    assert_clean(&tracer);
}

#[test]
fn truncated_udp_payload_is_counted() {
    let (mut bed, tracer) = traced_bed(64);
    // The UDP length field promises more bytes than the frame carries.
    let ip = Ipv4Header::new(SRC_IP, HOST_IP, IpProto::Udp, UDP_HDR_LEN + 4);
    let udp = UdpHeader::new(999, 4321, 64);
    let mut f = eth(EtherType::Ipv4);
    f.extend_from_slice(&ip.encode());
    f.extend_from_slice(&udp.encode());
    f.extend_from_slice(&[0u8; 4]);
    inject(&mut bed, f);
    assert_stack_drop(&bed, &tracer, DropReason::TruncatedPayload);
    assert_clean(&tracer);
}

#[test]
fn unsupported_transport_protocol_is_counted() {
    let (mut bed, tracer) = traced_bed(65);
    let ip = Ipv4Header::new(SRC_IP, HOST_IP, IpProto::Other(89), 8);
    let mut f = eth(EtherType::Ipv4);
    f.extend_from_slice(&ip.encode());
    f.extend_from_slice(&[0u8; 8]);
    inject(&mut bed, f);
    assert_stack_drop(&bed, &tracer, DropReason::UnsupportedProtocol);
    assert_clean(&tracer);
}

#[test]
fn datagram_for_another_host_is_counted() {
    // Only library stacks police the destination address (the kernel
    // and server placements trust the filter), so drive one directly.
    let mut sim = Sim::new(1);
    let cpu = Rc::new(RefCell::new(Cpu::new()));
    let tracer = Tracer::shared();
    cpu.borrow_mut().set_tracer(Some(tracer.clone()));
    let stack = psd::netstack::NetStack::new(
        psd::netstack::Placement::Library,
        CostModel::decstation_5000_200(),
        cpu.clone(),
        HOST_IP,
    );
    // Right MAC, wrong IP: a confused bridge, not our datagram. With
    // no wire in the loop, open the packet's trace by hand as the NIC
    // would have.
    let f = udp_frame((Ipv4Addr::new(10, 0, 0, 9), 4321), &[0u8; 8]);
    let pkt = tracer.borrow_mut().begin_packet(SimTime::ZERO, None);
    tracer.borrow_mut().push_current(pkt);
    let mut charge = cpu.borrow_mut().begin(SimTime::ZERO);
    stack.borrow_mut().input_frame(&mut sim, &mut charge, &f);
    cpu.borrow_mut().finish(charge);
    tracer.borrow_mut().pop_current();
    sim.run_to_idle();
    assert_eq!(tracer.borrow().drops().get(DropReason::NotForHost), 1);
    assert_eq!(
        stack.borrow().stats.drops.get(DropReason::NotForHost),
        1,
        "stack stats missed NotForHost"
    );
    assert_clean(&tracer);
}

#[test]
fn udp_to_unbound_port_is_port_unreachable() {
    let (mut bed, tracer) = traced_bed(67);
    let f = udp_frame((HOST_IP, 4321), &[0u8; 8]);
    inject(&mut bed, f);
    assert_stack_drop(&bed, &tracer, DropReason::PortUnreachable);
    assert_clean(&tracer);
}

#[test]
fn tcp_syn_to_closed_port_is_connection_refused() {
    let (mut bed, tracer) = traced_bed(68);
    let ip = Ipv4Header::new(SRC_IP, HOST_IP, IpProto::Tcp, 20);
    let tcp = TcpHeader {
        src_port: 999,
        dst_port: 4321,
        seq: 100,
        ack: 0,
        flags: TcpFlags::SYN,
        window: 4096,
        urgent: 0,
        mss: None,
    };
    let mut f = eth(EtherType::Ipv4);
    f.extend_from_slice(&ip.encode());
    f.extend_from_slice(&tcp.encode_with_checksum(&ip, 0, std::iter::empty()));
    inject(&mut bed, f);
    assert_stack_drop(&bed, &tracer, DropReason::ConnectionRefused);
    assert_clean(&tracer);
}

#[test]
fn arp_and_held_fragments_absorb_instead_of_dropping() {
    let (mut bed, tracer) = traced_bed(69);
    let arp = psd::wire::ArpPacket::request(EtherAddr::local(1), SRC_IP, HOST_IP);
    let mut f = eth(EtherType::Arp);
    f.extend_from_slice(&arp.encode());
    inject(&mut bed, f);

    // First fragment of a datagram whose tail never arrives: held for
    // reassembly, which is an absorption, not a drop.
    let mut ip = Ipv4Header::new(SRC_IP, HOST_IP, IpProto::Udp, 24);
    ip.more_fragments = true;
    let mut frag = eth(EtherType::Ipv4);
    frag.extend_from_slice(&ip.encode());
    frag.extend_from_slice(&[0u8; 24]);
    inject(&mut bed, frag);

    let t = tracer.borrow();
    let (_, absorbed, _) = t.terminal_counts();
    assert!(
        absorbed >= 2,
        "ARP and a held fragment must both absorb, got {absorbed}"
    );
    assert_eq!(t.drops().get(DropReason::MalformedFrame), 0);
    drop(t);
    assert_clean(&tracer);
}

/// A frame the session filter rejects on a kernel with no default
/// endpoint: the one kernel-domain drop an application can cause from
/// the wire.
#[test]
fn filter_miss_without_default_endpoint_is_counted() {
    let mut sim = Sim::new(1);
    let ether = Ethernet::ten_megabit(&mut sim);
    let cpu = Rc::new(RefCell::new(Cpu::new()));
    let tracer = Tracer::shared();
    cpu.borrow_mut().set_tracer(Some(tracer.clone()));
    ether.borrow_mut().set_tracer(Some(tracer.clone()));
    let kernel = Kernel::new(CostModel::decstation_5000_200(), cpu, EtherAddr::local(2));
    Kernel::connect(&kernel, &ether);

    let f = udp_frame((HOST_IP, 7777), &[0u8; 8]);
    Ethernet::transmit(&ether, &mut sim, SimTime::ZERO, f);
    sim.run_to_idle();

    assert_eq!(kernel.borrow().stats().drops.get(DropReason::FilterMiss), 1);
    assert_eq!(tracer.borrow().drops().get(DropReason::FilterMiss), 1);
    assert_clean(&tracer);
}

/// As above but with an endpoint that is destroyed while frames are
/// still in flight: the kernel must type those as `EndpointDead`.
#[test]
fn destroyed_endpoint_is_counted_dead() {
    let mut sim = Sim::new(1);
    let ether = Ethernet::ten_megabit(&mut sim);
    let cpu = Rc::new(RefCell::new(Cpu::new()));
    let tracer = Tracer::shared();
    cpu.borrow_mut().set_tracer(Some(tracer.clone()));
    ether.borrow_mut().set_tracer(Some(tracer.clone()));
    let kernel = Kernel::new(CostModel::decstation_5000_200(), cpu, EtherAddr::local(2));
    Kernel::connect(&kernel, &ether);

    let sink: psd::kernel::PacketSink =
        Rc::new(RefCell::new(|_: &mut Sim, _: SimTime, _: Vec<u8>| {}));
    let ep = kernel.borrow_mut().create_endpoint(RxMode::Ipc, sink);
    // Two session filters on one endpoint: teardown unhooks the most
    // recent install, leaving the first targeting a dead endpoint —
    // exactly the in-flight window `EndpointDead` names.
    kernel
        .borrow_mut()
        .install_filter(
            psd::filter::EndpointSpec::unconnected(IpProto::Udp, HOST_IP, 7777),
            ep,
        )
        .unwrap();
    kernel
        .borrow_mut()
        .install_filter(
            psd::filter::EndpointSpec::unconnected(IpProto::Udp, HOST_IP, 8888),
            ep,
        )
        .unwrap();
    let f = udp_frame((HOST_IP, 7777), &[0u8; 8]);
    Ethernet::transmit(&ether, &mut sim, SimTime::ZERO, f);
    // Destroy the endpoint before the NIC interrupt fires.
    kernel.borrow_mut().destroy_endpoint(ep);
    sim.run_to_idle();

    assert_eq!(
        kernel.borrow().stats().drops.get(DropReason::EndpointDead),
        1
    );
    assert_eq!(tracer.borrow().drops().get(DropReason::EndpointDead), 1);
    assert_clean(&tracer);
}

/// Deterministic fuzz: spray randomized adversarial frames (strays,
/// fragments, truncations, ARP, garbage) at a live in-kernel host and
/// require that every single one reaches a typed terminal — the
/// no-silent-drop property the taxonomy exists to guarantee.
#[test]
fn fuzzed_frames_never_drop_silently() {
    let (mut bed, tracer) = traced_bed(70);
    let mut rng = Rng::new(0xD20F_FA11);
    for _ in 0..250 {
        let frame = if rng.chance(0.05) {
            let arp = psd::wire::ArpPacket::request(EtherAddr::local(1), SRC_IP, HOST_IP);
            let mut f = eth(EtherType::Arp);
            f.extend_from_slice(&arp.encode());
            f
        } else if rng.chance(0.05) {
            let mut f = eth(EtherType::Other(rng.range(0x0900, 0xFFFF) as u16));
            f.extend_from_slice(&vec![0u8; rng.below(40) as usize]);
            f
        } else {
            let tcp = rng.chance(0.3);
            let dst_ip = if rng.chance(0.85) {
                HOST_IP
            } else {
                Ipv4Addr::new(10, 0, 0, 9)
            };
            let dst_port = rng.range(1, 9999) as u16;
            let mut f = if tcp {
                let ip = Ipv4Header::new(SRC_IP, dst_ip, IpProto::Tcp, 20);
                let hdr = TcpHeader {
                    src_port: rng.range(1, 9999) as u16,
                    dst_port,
                    seq: rng.next_u64() as u32,
                    ack: 0,
                    flags: if rng.chance(0.5) {
                        TcpFlags::SYN
                    } else {
                        TcpFlags::ACK
                    },
                    window: 1024,
                    urgent: 0,
                    mss: None,
                };
                let mut f = eth(EtherType::Ipv4);
                f.extend_from_slice(&ip.encode());
                f.extend_from_slice(&hdr.encode());
                f
            } else {
                let payload = vec![rng.next_u64() as u8; rng.below(64) as usize];
                let mut ip =
                    Ipv4Header::new(SRC_IP, dst_ip, IpProto::Udp, UDP_HDR_LEN + payload.len());
                if rng.chance(0.1) {
                    ip.frag_offset = rng.range(1, 50) as u16 * 8;
                    ip.more_fragments = rng.chance(0.5);
                }
                let mut udp = UdpHeader::new(rng.range(1, 9999) as u16, dst_port, payload.len());
                if rng.chance(0.5) {
                    udp.checksum = udp.checksum_for(&ip, std::iter::once(&payload[..]));
                }
                let mut f = eth(EtherType::Ipv4);
                f.extend_from_slice(&ip.encode());
                f.extend_from_slice(&udp.encode());
                f.extend_from_slice(&payload);
                f
            };
            // Occasionally shear the frame, never below the Ethernet
            // header (true runts can't leave the simulated wire).
            if rng.chance(0.1) {
                let min = psd::wire::ETHER_HDR_LEN;
                let cut = min + rng.below((f.len() - min + 1) as u64) as usize;
                f.truncate(cut);
            }
            f
        };
        inject(&mut bed, frame);
    }
    bed.settle();
    assert_clean(&tracer);
    let t = tracer.borrow();
    let drops = t.drops();
    assert!(
        drops.total() > 0,
        "an adversarial spray must produce typed drops"
    );
    // The spray must exercise a spread of the taxonomy, not one bin.
    let distinct = DropReason::ALL
        .iter()
        .filter(|&&r| drops.get(r) > 0)
        .count();
    assert!(distinct >= 3, "only {distinct} distinct drop reasons hit");
}
