//! Targeted fault-injection and recovery tests: each test drives one
//! named failure mode through the fault plane (or a direct knob) and
//! asserts the recovery protocol's contract — graceful degradation to
//! the server path, idempotent RPC retry, migration rollback, and
//! server crash/restart with session-DB rebuild.

mod common;

use common::{run_until, tcp_client, tcp_echo_server, udp_echo_server};
use psd::core::{AppHandle, AppLib, Fd, FdEventFn};
use psd::netstack::{InetAddr, SockEvent, SocketError};
use psd::server::{OsServer, Proto};
use psd::sim::{FaultSite, Platform, SimTime};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::rc::Rc;

/// Attaches a datagram-counting handler to a UDP descriptor.
fn count_datagrams(app: &AppHandle, fd: Fd) -> Rc<RefCell<usize>> {
    let got = Rc::new(RefCell::new(0usize));
    let (app2, got2) = (app.clone(), got.clone());
    let handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                let mut buf = [0u8; 4096];
                while AppLib::recvfrom(&app2, sim, fd, &mut buf).is_ok() {
                    *got2.borrow_mut() += 1;
                }
            }
        },
    ));
    app.borrow_mut().set_event_handler(fd, handler);
    got
}

/// Sends request datagrams until at least one echo comes back (the
/// first send to a fresh destination is lost while ARP resolves).
fn echo_until_reply(
    bed: &mut TestBed,
    app: &AppHandle,
    fd: Fd,
    dst: InetAddr,
    got: &Rc<RefCell<usize>>,
) {
    let floor = *got.borrow();
    for _ in 0..50 {
        let _ = AppLib::sendto(app, &mut bed.sim, fd, b"ping", Some(dst));
        bed.run_for(SimTime::from_millis(50));
        if *got.borrow() > floor {
            return;
        }
    }
    panic!("no echo came back on the degraded path");
}

/// Filter-table exhaustion: when the kernel cannot take another packet
/// filter, the bind must NOT fail — the session falls back to the
/// server data path (DESIGN.md §6), and once a migrated socket closes
/// and frees its slot, new binds migrate again.
#[test]
fn filter_exhaustion_falls_back_to_server_path_and_recovers() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 7);
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 53);

    // One migrated bind to establish the baseline.
    let fd0 = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd0, 5000).expect("bind fd0");
    let base_migrations = os.borrow().stats.migrations_out;
    assert!(base_migrations >= 1, "library-mode bind must migrate");

    // Freeze the filter table at its current size: the next install
    // must be denied.
    let installed = bed.hosts[0].kernel.borrow().filters_installed();
    bed.hosts[0]
        .kernel
        .borrow_mut()
        .set_filter_capacity(Some(installed));

    let fd1 = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd1, 5001).expect("degraded bind must still succeed");
    assert_eq!(os.borrow().stats.migrations_denied, 1);
    assert_eq!(
        os.borrow().stats.migrations_out,
        base_migrations,
        "a denied migration must not count as migrated"
    );

    // The degraded descriptor still passes data via the server path.
    let got = count_datagrams(&client_app, fd1);
    echo_until_reply(&mut bed, &client_app, fd1, dst, &got);

    // Closing the migrated socket frees its filter slot; a fresh bind
    // migrates again.
    AppLib::close(&client_app, &mut bed.sim, fd0);
    bed.run_for(SimTime::from_millis(100));
    let fd2 = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd2, 5002).expect("bind fd2");
    assert!(
        os.borrow().stats.migrations_out > base_migrations,
        "migration must resume once a slot frees up"
    );
}

/// A 3-frame burst loss mid-transfer: the library stack's TCP must
/// retransmit and the receiver must see every byte exactly once.
#[test]
fn tcp_recovers_from_three_frame_burst_loss() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 11);
    let server_app = bed.hosts[1].spawn_app();
    let echoed = tcp_echo_server(&mut bed, &server_app, 80);
    let client_app = bed.hosts[0].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = tcp_client(&mut bed, &client_app, dst);
    assert!(run_until(&mut bed, SimTime::from_secs(60), || {
        *client.connected.borrow()
    }));

    let pattern: Vec<u8> = (0..16 * 1024u32).map(|i| (i % 251) as u8).collect();
    let mut sent = 0;
    let mut burst_fired = false;
    let mut guard = 0;
    while sent < pattern.len() {
        guard += 1;
        assert!(guard < 10_000, "stalled at {sent}");
        if let Ok(n) = AppLib::send(&client_app, &mut bed.sim, client.fd, &pattern[sent..]) {
            sent += n;
        }
        if !burst_fired && sent >= pattern.len() / 2 {
            // Kill the next three frames on the wire, whatever they are.
            bed.ether.borrow_mut().drop_next_frames(3);
            burst_fired = true;
        }
        bed.run_for(SimTime::from_millis(50));
    }
    assert!(
        run_until(&mut bed, SimTime::from_secs(300), || {
            client.replies.borrow().len() >= pattern.len()
        }),
        "echo incomplete after burst loss: {} of {}",
        client.replies.borrow().len(),
        pattern.len()
    );
    assert_eq!(
        client.replies.borrow().as_slice(),
        pattern.as_slice(),
        "burst loss corrupted the stream"
    );
    assert_eq!(*echoed.borrow(), pattern.len());
    assert!(bed.ether.borrow().stats().dropped >= 3);
    let rexmt = client_app
        .borrow()
        .stack()
        .map(|s| s.borrow().stats.tcp_rexmt)
        .unwrap_or(0)
        + server_app
            .borrow()
            .stack()
            .map(|s| s.borrow().stats.tcp_rexmt)
            .unwrap_or(0);
    assert!(rexmt > 0, "a burst loss must force retransmission");
}

/// Losing the migration capsule between export and retarget triggers
/// the rollback path: the session must stay wholly server-resident —
/// exactly one owner — and datagrams keep flowing exactly once.
#[test]
fn lost_migration_capsule_rolls_back_to_server_residence() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 13);
    let plane = bed.attach_fault_plane();
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53); // migrates on host 1
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 53);

    let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    // Fault exactly the next visit to the capsule site (earlier visits
    // belong to the echo server's own migration on host 1).
    let v = plane.borrow().visits(FaultSite::MigrationCapsule);
    plane.borrow_mut().script(FaultSite::MigrationCapsule, &[v]);
    AppLib::bind(&client_app, &mut bed.sim, fd, 6000).expect("bind survives capsule loss");

    assert_eq!(os.borrow().stats.migrations_rolled_back, 1);
    assert_eq!(plane.borrow().injected(FaultSite::MigrationCapsule), 1);
    assert_eq!(os.borrow().session_count(), 1, "exactly one session");
    assert_eq!(os.borrow().ports().len(), 1, "exactly one port claim");

    // Exactly-once delivery on the rolled-back (server-resident) path.
    let got = count_datagrams(&client_app, fd);
    echo_until_reply(&mut bed, &client_app, fd, dst, &got);
    let after_warm = *got.borrow();
    for _ in 0..5 {
        AppLib::sendto(&client_app, &mut bed.sim, fd, b"pong", Some(dst)).expect("sendto");
        bed.run_for(SimTime::from_millis(50));
    }
    assert!(run_until(&mut bed, SimTime::from_secs(10), || {
        *got.borrow() >= after_warm + 5
    }));
    bed.run_for(SimTime::from_millis(500));
    assert_eq!(
        *got.borrow(),
        after_warm + 5,
        "a rolled-back migration must not duplicate datagrams"
    );
}

/// Server crash and restart in library mode: migrated sessions keep
/// passing data while the server is down (their state is kernel
/// state), re-registration fails until restart, and the session DB is
/// rebuilt from the stub records.
#[test]
fn migrated_sessions_survive_server_crash_and_restart() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 17);
    let server_app = bed.hosts[1].spawn_app();
    tcp_echo_server(&mut bed, &server_app, 80);
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = tcp_client(&mut bed, &client_app, dst);
    assert!(run_until(&mut bed, SimTime::from_secs(60), || {
        *client.connected.borrow()
    }));

    let chunk: Vec<u8> = (0..4096u32).map(|i| (i % 239) as u8).collect();
    let mut pushed = 0;
    while pushed < chunk.len() {
        if let Ok(n) = AppLib::send(&client_app, &mut bed.sim, client.fd, &chunk[pushed..]) {
            pushed += n;
        }
        bed.run_for(SimTime::from_millis(20));
    }
    assert!(run_until(&mut bed, SimTime::from_secs(30), || {
        client.replies.borrow().len() >= chunk.len()
    }));

    OsServer::crash(&os, &mut bed.sim);
    assert!(os.borrow().is_down());
    assert!(
        !AppLib::reregister(&client_app, &mut bed.sim),
        "re-registration must fail while the server is down"
    );

    // The migrated connection's data path never touches the server.
    let mut pushed2 = 0;
    let mut guard = 0;
    while pushed2 < chunk.len() {
        guard += 1;
        assert!(guard < 10_000, "migrated path stalled during crash");
        if let Ok(n) = AppLib::send(&client_app, &mut bed.sim, client.fd, &chunk[pushed2..]) {
            pushed2 += n;
        }
        bed.run_for(SimTime::from_millis(20));
    }
    assert!(
        run_until(&mut bed, SimTime::from_secs(30), || {
            client.replies.borrow().len() >= 2 * chunk.len()
        }),
        "migrated session must keep flowing while the server is down"
    );
    let replies = client.replies.borrow();
    assert_eq!(&replies[..chunk.len()], chunk.as_slice());
    assert_eq!(&replies[chunk.len()..2 * chunk.len()], chunk.as_slice());
    drop(replies);

    OsServer::restart(&os, &mut bed.sim);
    assert!(!os.borrow().is_down());
    assert!(os.borrow().stats.sessions_rebuilt >= 1);
    assert_eq!(os.borrow().stats.crashes, 1);
    assert_eq!(os.borrow().stats.restarts, 1);
    assert!(
        AppLib::reregister(&client_app, &mut bed.sim),
        "re-registration must succeed after restart"
    );

    // Control-plane service has resumed: a new bind migrates.
    let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd, 7000).expect("bind after restart");
}

/// Server crash in the server-based configuration: resident
/// descriptors die with the server's in-memory DB, and re-registered
/// applications get clean failures plus a working control plane.
#[test]
fn server_resident_descriptors_die_with_the_server() {
    let mut bed = TestBed::new(SystemConfig::UxServer, Platform::DecStation5000_200, 19);
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 53);

    let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd, 7100).expect("bind");
    let got = count_datagrams(&client_app, fd);
    echo_until_reply(&mut bed, &client_app, fd, dst, &got);

    OsServer::crash(&os, &mut bed.sim);
    assert!(
        AppLib::sendto(&client_app, &mut bed.sim, fd, b"x", Some(dst)).is_err(),
        "resident data path must fail while the server is down"
    );

    OsServer::restart(&os, &mut bed.sim);
    assert!(AppLib::reregister(&client_app, &mut bed.sim));
    // The resident session died in the crash; its descriptor is gone.
    assert!(
        AppLib::sendto(&client_app, &mut bed.sim, fd, b"x", Some(dst)).is_err(),
        "a dead descriptor must not come back to life"
    );

    // A fresh socket works end to end again.
    let fd2 = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd2, 7200).expect("bind after restart");
    let got2 = count_datagrams(&client_app, fd2);
    echo_until_reply(&mut bed, &client_app, fd2, dst, &got2);
}

/// A lost RPC reply is retried with the same token: the server answers
/// from its idempotency ledger, so the port is claimed exactly once
/// and no session is duplicated.
#[test]
fn lost_rpc_reply_retries_without_double_allocation() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 23);
    let plane = bed.attach_fault_plane();
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 53);

    let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    // Lose exactly the next RPC reply (the bind below).
    let v = plane.borrow().visits(FaultSite::ProxyRpc);
    plane.borrow_mut().script(FaultSite::ProxyRpc, &[v]);
    AppLib::bind(&client_app, &mut bed.sim, fd, 8000).expect("bind survives a lost reply");

    assert_eq!(client_app.borrow().stats.rpc_retries, 1);
    assert!(os.borrow().stats.rpc_dedup_hits >= 1);
    assert_eq!(
        os.borrow().ports().len(),
        1,
        "a retried bind must not claim a second port"
    );
    assert_eq!(os.borrow().session_count(), 1);

    // The retried, re-migrated descriptor passes data normally.
    let got = count_datagrams(&client_app, fd);
    echo_until_reply(&mut bed, &client_app, fd, dst, &got);
}

/// Every retry attempt's reply is lost: the call must fail with a
/// clean deadline timeout, not hang and not panic.
#[test]
fn rpc_deadline_expires_after_bounded_retries() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 29);
    let plane = bed.attach_fault_plane();
    let client_app = bed.hosts[0].spawn_app();

    let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    let v = plane.borrow().visits(FaultSite::ProxyRpc);
    plane
        .borrow_mut()
        .script(FaultSite::ProxyRpc, &[v, v + 1, v + 2, v + 3]);
    assert_eq!(
        AppLib::bind(&client_app, &mut bed.sim, fd, 8100),
        Err(SocketError::TimedOut)
    );
    assert_eq!(client_app.borrow().stats.rpc_timeouts, 1);
    assert_eq!(plane.borrow().injected(FaultSite::ProxyRpc), 4);
}
