//! Targeted fault-injection and recovery tests: each test drives one
//! named failure mode through the fault plane (or a direct knob) and
//! asserts the recovery protocol's contract — graceful degradation to
//! the server path, idempotent RPC retry, migration rollback, and
//! server crash/restart with session-DB rebuild.

mod common;

use common::{run_until, tcp_client, tcp_echo_server, udp_echo_server};
use psd::core::{AppHandle, AppLib, Fd, FdEventFn};
use psd::netstack::{InetAddr, SockEvent, SocketError};
use psd::server::{OsServer, Proto};
use psd::sim::{FaultSite, Platform, SimTime};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::rc::Rc;

/// Attaches a datagram-counting handler to a UDP descriptor.
fn count_datagrams(app: &AppHandle, fd: Fd) -> Rc<RefCell<usize>> {
    let got = Rc::new(RefCell::new(0usize));
    let (app2, got2) = (app.clone(), got.clone());
    let handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                let mut buf = [0u8; 4096];
                while AppLib::recvfrom(&app2, sim, fd, &mut buf).is_ok() {
                    *got2.borrow_mut() += 1;
                }
            }
        },
    ));
    app.borrow_mut().set_event_handler(fd, handler);
    got
}

/// Sends request datagrams until at least one echo comes back (the
/// first send to a fresh destination is lost while ARP resolves).
fn echo_until_reply(
    bed: &mut TestBed,
    app: &AppHandle,
    fd: Fd,
    dst: InetAddr,
    got: &Rc<RefCell<usize>>,
) {
    let floor = *got.borrow();
    for _ in 0..50 {
        let _ = AppLib::sendto(app, &mut bed.sim, fd, b"ping", Some(dst));
        bed.run_for(SimTime::from_millis(50));
        if *got.borrow() > floor {
            return;
        }
    }
    panic!("no echo came back on the degraded path");
}

/// Filter-table exhaustion: when the kernel cannot take another packet
/// filter, the bind must NOT fail — the session falls back to the
/// server data path (DESIGN.md §6), and once a migrated socket closes
/// and frees its slot, new binds migrate again.
#[test]
fn filter_exhaustion_falls_back_to_server_path_and_recovers() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 7);
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 53);

    // One migrated bind to establish the baseline.
    let fd0 = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd0, 5000).expect("bind fd0");
    let base_migrations = os.borrow().stats.migrations_out;
    assert!(base_migrations >= 1, "library-mode bind must migrate");

    // Freeze the filter table at its current size: the next install
    // must be denied.
    let installed = bed.hosts[0].kernel.borrow().filters_installed();
    bed.hosts[0]
        .kernel
        .borrow_mut()
        .set_filter_capacity(Some(installed));

    let fd1 = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd1, 5001).expect("degraded bind must still succeed");
    assert_eq!(os.borrow().stats.migrations_denied, 1);
    assert_eq!(
        os.borrow().stats.migrations_out,
        base_migrations,
        "a denied migration must not count as migrated"
    );

    // The degraded descriptor still passes data via the server path.
    let got = count_datagrams(&client_app, fd1);
    echo_until_reply(&mut bed, &client_app, fd1, dst, &got);

    // Closing the migrated socket frees its filter slot; a fresh bind
    // migrates again.
    AppLib::close(&client_app, &mut bed.sim, fd0);
    bed.run_for(SimTime::from_millis(100));
    let fd2 = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd2, 5002).expect("bind fd2");
    assert!(
        os.borrow().stats.migrations_out > base_migrations,
        "migration must resume once a slot frees up"
    );
}

/// A 3-frame burst loss mid-transfer: the library stack's TCP must
/// retransmit and the receiver must see every byte exactly once.
#[test]
fn tcp_recovers_from_three_frame_burst_loss() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 11);
    let server_app = bed.hosts[1].spawn_app();
    let echoed = tcp_echo_server(&mut bed, &server_app, 80);
    let client_app = bed.hosts[0].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = tcp_client(&mut bed, &client_app, dst);
    assert!(run_until(&mut bed, SimTime::from_secs(60), || {
        *client.connected.borrow()
    }));

    let pattern: Vec<u8> = (0..16 * 1024u32).map(|i| (i % 251) as u8).collect();
    let mut sent = 0;
    let mut burst_fired = false;
    let mut guard = 0;
    while sent < pattern.len() {
        guard += 1;
        assert!(guard < 10_000, "stalled at {sent}");
        if let Ok(n) = AppLib::send(&client_app, &mut bed.sim, client.fd, &pattern[sent..]) {
            sent += n;
        }
        if !burst_fired && sent >= pattern.len() / 2 {
            // Kill the next three frames on the wire, whatever they are.
            bed.ether.borrow_mut().drop_next_frames(3);
            burst_fired = true;
        }
        bed.run_for(SimTime::from_millis(50));
    }
    assert!(
        run_until(&mut bed, SimTime::from_secs(300), || {
            client.replies.borrow().len() >= pattern.len()
        }),
        "echo incomplete after burst loss: {} of {}",
        client.replies.borrow().len(),
        pattern.len()
    );
    assert_eq!(
        client.replies.borrow().as_slice(),
        pattern.as_slice(),
        "burst loss corrupted the stream"
    );
    assert_eq!(*echoed.borrow(), pattern.len());
    assert!(bed.ether.borrow().stats().dropped >= 3);
    let rexmt = client_app
        .borrow()
        .stack()
        .map(|s| s.borrow().stats.tcp_rexmt)
        .unwrap_or(0)
        + server_app
            .borrow()
            .stack()
            .map(|s| s.borrow().stats.tcp_rexmt)
            .unwrap_or(0);
    assert!(rexmt > 0, "a burst loss must force retransmission");
}

/// Losing the migration capsule between export and retarget triggers
/// the rollback path: the session must stay wholly server-resident —
/// exactly one owner — and datagrams keep flowing exactly once.
#[test]
fn lost_migration_capsule_rolls_back_to_server_residence() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 13);
    let plane = bed.attach_fault_plane();
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53); // migrates on host 1
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 53);

    let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    // Fault exactly the next visit to the capsule site (earlier visits
    // belong to the echo server's own migration on host 1).
    let v = plane.borrow().visits(FaultSite::MigrationCapsule);
    plane.borrow_mut().script(FaultSite::MigrationCapsule, &[v]);
    AppLib::bind(&client_app, &mut bed.sim, fd, 6000).expect("bind survives capsule loss");

    assert_eq!(os.borrow().stats.migrations_rolled_back, 1);
    assert_eq!(plane.borrow().injected(FaultSite::MigrationCapsule), 1);
    assert_eq!(os.borrow().session_count(), 1, "exactly one session");
    assert_eq!(os.borrow().ports().len(), 1, "exactly one port claim");

    // Exactly-once delivery on the rolled-back (server-resident) path.
    let got = count_datagrams(&client_app, fd);
    echo_until_reply(&mut bed, &client_app, fd, dst, &got);
    let after_warm = *got.borrow();
    for _ in 0..5 {
        AppLib::sendto(&client_app, &mut bed.sim, fd, b"pong", Some(dst)).expect("sendto");
        bed.run_for(SimTime::from_millis(50));
    }
    assert!(run_until(&mut bed, SimTime::from_secs(10), || {
        *got.borrow() >= after_warm + 5
    }));
    bed.run_for(SimTime::from_millis(500));
    assert_eq!(
        *got.borrow(),
        after_warm + 5,
        "a rolled-back migration must not duplicate datagrams"
    );
}

/// Server crash and restart in library mode: migrated sessions keep
/// passing data while the server is down (their state is kernel
/// state), re-registration fails until restart, and the session DB is
/// rebuilt from the stub records.
#[test]
fn migrated_sessions_survive_server_crash_and_restart() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 17);
    let server_app = bed.hosts[1].spawn_app();
    tcp_echo_server(&mut bed, &server_app, 80);
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = tcp_client(&mut bed, &client_app, dst);
    assert!(run_until(&mut bed, SimTime::from_secs(60), || {
        *client.connected.borrow()
    }));

    let chunk: Vec<u8> = (0..4096u32).map(|i| (i % 239) as u8).collect();
    let mut pushed = 0;
    while pushed < chunk.len() {
        if let Ok(n) = AppLib::send(&client_app, &mut bed.sim, client.fd, &chunk[pushed..]) {
            pushed += n;
        }
        bed.run_for(SimTime::from_millis(20));
    }
    assert!(run_until(&mut bed, SimTime::from_secs(30), || {
        client.replies.borrow().len() >= chunk.len()
    }));

    OsServer::crash(&os, &mut bed.sim);
    assert!(os.borrow().is_down());
    assert!(
        !AppLib::reregister(&client_app, &mut bed.sim),
        "re-registration must fail while the server is down"
    );

    // The migrated connection's data path never touches the server.
    let mut pushed2 = 0;
    let mut guard = 0;
    while pushed2 < chunk.len() {
        guard += 1;
        assert!(guard < 10_000, "migrated path stalled during crash");
        if let Ok(n) = AppLib::send(&client_app, &mut bed.sim, client.fd, &chunk[pushed2..]) {
            pushed2 += n;
        }
        bed.run_for(SimTime::from_millis(20));
    }
    assert!(
        run_until(&mut bed, SimTime::from_secs(30), || {
            client.replies.borrow().len() >= 2 * chunk.len()
        }),
        "migrated session must keep flowing while the server is down"
    );
    let replies = client.replies.borrow();
    assert_eq!(&replies[..chunk.len()], chunk.as_slice());
    assert_eq!(&replies[chunk.len()..2 * chunk.len()], chunk.as_slice());
    drop(replies);

    OsServer::restart(&os, &mut bed.sim);
    assert!(!os.borrow().is_down());
    assert!(os.borrow().stats.sessions_rebuilt >= 1);
    assert_eq!(os.borrow().stats.crashes, 1);
    assert_eq!(os.borrow().stats.restarts, 1);
    assert!(
        AppLib::reregister(&client_app, &mut bed.sim),
        "re-registration must succeed after restart"
    );

    // Control-plane service has resumed: a new bind migrates.
    let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd, 7000).expect("bind after restart");
}

/// Server crash in the server-based configuration: resident
/// descriptors die with the server's in-memory DB, and re-registered
/// applications get clean failures plus a working control plane.
#[test]
fn server_resident_descriptors_die_with_the_server() {
    let mut bed = TestBed::new(SystemConfig::UxServer, Platform::DecStation5000_200, 19);
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 53);

    let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd, 7100).expect("bind");
    let got = count_datagrams(&client_app, fd);
    echo_until_reply(&mut bed, &client_app, fd, dst, &got);

    OsServer::crash(&os, &mut bed.sim);
    assert!(
        AppLib::sendto(&client_app, &mut bed.sim, fd, b"x", Some(dst)).is_err(),
        "resident data path must fail while the server is down"
    );

    OsServer::restart(&os, &mut bed.sim);
    assert!(AppLib::reregister(&client_app, &mut bed.sim));
    // The resident session died in the crash; its descriptor is gone.
    assert!(
        AppLib::sendto(&client_app, &mut bed.sim, fd, b"x", Some(dst)).is_err(),
        "a dead descriptor must not come back to life"
    );

    // A fresh socket works end to end again.
    let fd2 = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, fd2, 7200).expect("bind after restart");
    let got2 = count_datagrams(&client_app, fd2);
    echo_until_reply(&mut bed, &client_app, fd2, dst, &got2);
}

/// A lost RPC reply is retried with the same token: the server answers
/// from its idempotency ledger, so the port is claimed exactly once
/// and no session is duplicated.
#[test]
fn lost_rpc_reply_retries_without_double_allocation() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 23);
    let plane = bed.attach_fault_plane();
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let client_app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let dst = InetAddr::new(bed.hosts[1].ip, 53);

    let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    // Lose exactly the next RPC reply (the bind below).
    let v = plane.borrow().visits(FaultSite::ProxyRpc);
    plane.borrow_mut().script(FaultSite::ProxyRpc, &[v]);
    AppLib::bind(&client_app, &mut bed.sim, fd, 8000).expect("bind survives a lost reply");

    assert_eq!(client_app.borrow().stats.rpc_retries, 1);
    assert!(os.borrow().stats.rpc_dedup_hits >= 1);
    assert_eq!(
        os.borrow().ports().len(),
        1,
        "a retried bind must not claim a second port"
    );
    assert_eq!(os.borrow().session_count(), 1);

    // The retried, re-migrated descriptor passes data normally.
    let got = count_datagrams(&client_app, fd);
    echo_until_reply(&mut bed, &client_app, fd, dst, &got);
}

/// Every retry attempt's reply is lost: the call must fail with a
/// clean deadline timeout, not hang and not panic.
#[test]
fn rpc_deadline_expires_after_bounded_retries() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 29);
    let plane = bed.attach_fault_plane();
    let client_app = bed.hosts[0].spawn_app();

    let fd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    let v = plane.borrow().visits(FaultSite::ProxyRpc);
    plane
        .borrow_mut()
        .script(FaultSite::ProxyRpc, &[v, v + 1, v + 2, v + 3]);
    assert_eq!(
        AppLib::bind(&client_app, &mut bed.sim, fd, 8100),
        Err(SocketError::TimedOut)
    );
    assert_eq!(client_app.borrow().stats.rpc_timeouts, 1);
    assert_eq!(plane.borrow().injected(FaultSite::ProxyRpc), 4);
}

/// Attaches a batched-drain handler (NEWAPI `recv_batch`) that counts
/// each received descriptor exactly once.
fn count_batched(app: &AppHandle, fd: Fd) -> Rc<RefCell<usize>> {
    let got = Rc::new(RefCell::new(0usize));
    let (app2, got2) = (app.clone(), got.clone());
    let handler: FdEventFn = Rc::new(RefCell::new(
        move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
            if ev == SockEvent::Readable {
                while let Ok(descs) = AppLib::recv_batch(&app2, sim, fd, 16, 1 << 16, false) {
                    if descs.is_empty() {
                        break;
                    }
                    *got2.borrow_mut() += descs.len();
                }
            }
        },
    ));
    app.borrow_mut().set_event_handler(fd, handler);
    got
}

/// A `ShmRing` fault landing mid-batch: with a 16-descriptor doorbell
/// window open on a migrated receiver, a second bind's migration hits
/// ring exhaustion. The contract is exactly-once-or-typed: the in-flight
/// batch delivers exactly once (no duplicated, no dropped descriptor and
/// no double-paid doorbell), the faulted bind degrades to the server
/// path with a typed outcome (`migrations_denied`, bind still succeeds),
/// and batched NEWAPI calls on the degraded descriptor surface a typed
/// `OpNotSupp` instead of silently corrupting the ring.
#[test]
fn shm_ring_fault_mid_batch_keeps_delivery_exactly_once() {
    use psd::kernel::BatchConfig;

    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 31);
    bed.set_batch_config(BatchConfig {
        batch: 16,
        gro: false,
        gso: false,
    });
    let plane = bed.attach_fault_plane();
    let rx_app = bed.hosts[1].spawn_app();
    let os1 = bed.hosts[1].server.clone().unwrap();

    // Receiver A: a migrated SHM session drained through recv_batch.
    let fd_a = AppLib::socket(&rx_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&rx_app, &mut bed.sim, fd_a, 6100).expect("bind A");
    let got_a = count_batched(&rx_app, fd_a);

    let tx_app = bed.hosts[0].spawn_app();
    let tx = AppLib::socket(&tx_app, &mut bed.sim, Proto::Udp);
    let dst_ip = bed.hosts[1].ip;
    AppLib::connect(&tx_app, &mut bed.sim, tx, InetAddr::new(dst_ip, 6100)).expect("connect");

    // Warm ARP (the first datagram to a fresh destination is lost while
    // the address resolves), then settle so the delivered warm count is
    // exact before the burst.
    for _ in 0..50 {
        let _ = AppLib::send(&tx_app, &mut bed.sim, tx, b"warm");
        bed.run_for(SimTime::from_millis(50));
        if *got_a.borrow() > 0 {
            break;
        }
    }
    bed.run_for(SimTime::from_millis(500));
    let warm = *got_a.borrow();
    assert!(warm > 0, "warm-up datagram never arrived");

    let crossings_before = bed.hosts[1].kernel.borrow().stats().rx_session_crossings;
    let denied_before = os1.borrow().stats.migrations_denied;
    let drops_before = bed.hosts[1].kernel.borrow().stats().drops.total();

    // First half of the burst: the doorbell window on A is open and
    // frames are still serializing on the wire when the fault lands.
    let bufs: Vec<Rc<Vec<u8>>> = (0..16u8).map(|i| Rc::new(vec![i; 512])).collect();
    let mut sent = 0usize;
    while sent < 8 {
        match AppLib::send_batch(&tx_app, &mut bed.sim, tx, &bufs[sent..8]) {
            Ok(n) if n > 0 => sent += n,
            _ => bed.run_for(SimTime::from_millis(2)),
        }
    }
    bed.run_for(SimTime::from_millis(2));

    // Mid-batch: the very next migrate_prepare hits ring exhaustion.
    let v = plane.borrow().visits(FaultSite::ShmRing);
    plane.borrow_mut().script(FaultSite::ShmRing, &[v]);
    let fd_b = AppLib::socket(&rx_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&rx_app, &mut bed.sim, fd_b, 6200)
        .expect("bind must survive ring exhaustion by degrading to the server path");
    assert_eq!(plane.borrow().injected(FaultSite::ShmRing), 1);
    assert_eq!(
        os1.borrow().stats.migrations_denied,
        denied_before + 1,
        "ring exhaustion must surface as a typed denial"
    );

    // Batched NEWAPI on the degraded (server-resident) descriptor is a
    // typed error, not a hang or a corrupted ring.
    assert_eq!(
        AppLib::recv_batch(&rx_app, &mut bed.sim, fd_b, 16, 1 << 16, false).err(),
        Some(SocketError::OpNotSupp)
    );
    assert_eq!(
        AppLib::send_batch(&rx_app, &mut bed.sim, fd_b, &bufs[..1]).err(),
        Some(SocketError::OpNotSupp)
    );

    // Second half of the burst rides the same window.
    while sent < 16 {
        match AppLib::send_batch(&tx_app, &mut bed.sim, tx, &bufs[sent..]) {
            Ok(n) if n > 0 => sent += n,
            _ => bed.run_for(SimTime::from_millis(2)),
        }
    }
    assert!(run_until(&mut bed, SimTime::from_secs(10), || {
        *got_a.borrow() >= warm + 16
    }));
    bed.run_for(SimTime::from_secs(1));
    assert_eq!(
        *got_a.borrow(),
        warm + 16,
        "a mid-batch fault must never duplicate or drop a descriptor"
    );
    assert_eq!(
        bed.hosts[1].kernel.borrow().stats().drops.total(),
        drops_before,
        "no descriptor may be dropped around the fault"
    );
    // Doorbell accounting is count-based per endpoint, so the burst adds
    // exactly the ceiling of delivered-over-window crossings — the fault
    // neither double-pays nor skips a doorbell.
    let total = warm as u64 + 16;
    let expected = total.div_ceil(16) - (warm as u64).div_ceil(16);
    assert_eq!(
        bed.hosts[1].kernel.borrow().stats().rx_session_crossings - crossings_before,
        expected
    );

    // Exactly-once on the degraded descriptor via the classic API.
    let got_b = count_datagrams(&rx_app, fd_b);
    let tx2 = AppLib::socket(&tx_app, &mut bed.sim, Proto::Udp);
    let dst_b = InetAddr::new(dst_ip, 6200);
    for _ in 0..5 {
        AppLib::sendto(&tx_app, &mut bed.sim, tx2, b"deg", Some(dst_b)).expect("sendto");
        bed.run_for(SimTime::from_millis(50));
    }
    assert!(run_until(&mut bed, SimTime::from_secs(10), || {
        *got_b.borrow() >= 5
    }));
    bed.run_for(SimTime::from_millis(500));
    assert_eq!(
        *got_b.borrow(),
        5,
        "server-path delivery must be exactly-once"
    );
}

/// Endpoint death mid-batch: a descriptor is sitting in the ring with
/// its doorbell window open when the endpoint dies (its session
/// migrated back) and a new owner installs the same filter. The kernel
/// must re-present the unconsumed frame to the classify path — the
/// PR 1 reclaim fix — so it reaches the new owner exactly once, under
/// batching, with no drop and no double-paid doorbell.
#[test]
fn endpoint_death_mid_batch_represents_unconsumed_frames() {
    use psd::filter::EndpointSpec;
    use psd::kernel::{BatchConfig, Kernel, PacketSink, RxMode};
    use psd::netdev::Ethernet;
    use psd::sim::{CostModel, Cpu, Sim, Tracer};
    use psd::wire::{
        EtherAddr, EtherType, EthernetHeader, IpProto, Ipv4Header, UdpHeader, UDP_HDR_LEN,
    };
    use std::net::Ipv4Addr;

    const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const DST: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const PORT: u16 = 7;
    const BODY: usize = 1400;

    let mut sim = Sim::new(1);
    let ether = Ethernet::ten_megabit(&mut sim);
    let cpu = Rc::new(RefCell::new(Cpu::new()));
    let tracer = Tracer::shared();
    cpu.borrow_mut().set_tracer(Some(tracer.clone()));
    let kernel = Kernel::new(CostModel::decstation_5000_200(), cpu, EtherAddr::local(2));
    Kernel::connect(&kernel, &ether);
    ether.borrow_mut().set_tracer(Some(tracer.clone()));

    type Log = Rc<RefCell<Vec<Vec<u8>>>>;
    fn sink(log: &Log) -> PacketSink {
        let l = log.clone();
        Rc::new(RefCell::new(move |_: &mut Sim, _, f: Vec<u8>| {
            l.borrow_mut().push(f);
        }))
    }
    let log_a: Log = Rc::new(RefCell::new(Vec::new()));
    let log_b: Log = Rc::new(RefCell::new(Vec::new()));

    let spec = EndpointSpec::unconnected(IpProto::Udp, DST, PORT);
    let ep_a = {
        let mut k = kernel.borrow_mut();
        k.set_batch_config(BatchConfig {
            batch: 8,
            gro: false,
            gso: false,
        });
        let ep = k.create_endpoint(RxMode::Shm, sink(&log_a));
        k.install_filter(spec, ep).unwrap();
        ep
    };

    // Five marked datagrams back-to-back: frame 0 finishes serializing
    // at ~1.16 ms and then charges ~0.5 ms of interrupt-path work, so
    // its descriptor sits in the ring — doorbell window open, four more
    // descriptors owed to it — when the endpoint dies at 1.3 ms.
    let frame = |mark: u8| {
        let ip = Ipv4Header::new(SRC, DST, IpProto::Udp, UDP_HDR_LEN + BODY);
        let udp = UdpHeader::new(999, PORT, BODY);
        let eth = EthernetHeader {
            dst: EtherAddr::local(2),
            src: EtherAddr::local(1),
            ethertype: EtherType::Ipv4,
        };
        let mut f = eth.encode().to_vec();
        f.extend_from_slice(&ip.encode());
        f.extend_from_slice(&udp.encode());
        f.extend_from_slice(&vec![mark; BODY]);
        f
    };
    for mark in 0..5u8 {
        Ethernet::transmit(&ether, &mut sim, SimTime::ZERO, frame(mark));
    }

    let k2 = kernel.clone();
    let log_b2 = log_b.clone();
    sim.at(SimTime::from_micros(1300), move |_| {
        let mut k = k2.borrow_mut();
        k.destroy_endpoint(ep_a);
        let ep_b = k.create_endpoint(RxMode::Shm, sink(&log_b2));
        k.install_filter(spec, ep_b).unwrap();
    });
    sim.run_to_idle();

    // Exactly once, to the new owner: every mark present, none twice,
    // nothing left on the dead endpoint.
    assert_eq!(log_a.borrow().len(), 0, "dead endpoint must not consume");
    let mut marks: Vec<u8> = log_b.borrow().iter().map(|f| f[42]).collect();
    marks.sort_unstable();
    assert_eq!(marks, vec![0, 1, 2, 3, 4]);
    // The unconsumed descriptor took the re-present path (not a fresh
    // wire arrival), and nothing was dropped.
    assert_eq!(tracer.borrow().event_count("requeued"), 1);
    let stats = kernel.borrow().stats();
    assert_eq!(stats.drops.total(), 0);
    // Doorbell accounting: the dead endpoint's window paid one crossing
    // for frame 0; the re-presented descriptor opens the new owner's
    // window (second crossing) and frames 1-4 ride it. Never more.
    assert_eq!(stats.rx_session_crossings, 2);
}
