//! Table 1 conformance: each BSD socket call maps to exactly the
//! proxy/server interaction the paper specifies, and — crucially — the
//! send/receive calls involve the operating system *not at all* in the
//! library architecture.

mod common;

use common::{run_until, tcp_client, tcp_echo_server, udp_echo_server};
use psd::core::AppLib;
use psd::netstack::InetAddr;
use psd::server::Proto;
use psd::sim::{Platform, SimTime};
use psd::systems::{SystemConfig, TestBed};

fn lib_bed() -> TestBed {
    TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 21)
}

#[test]
fn socket_creates_a_server_managed_session() {
    let mut bed = lib_bed();
    let app = bed.hosts[0].spawn_app();
    let server = bed.hosts[0].server.clone().unwrap();
    let before = server.borrow().session_count();
    let _fd = AppLib::socket(&app, &mut bed.sim, Proto::Tcp);
    assert_eq!(server.borrow().session_count(), before + 1);
    assert_eq!(app.borrow().stats.control_rpcs, 1);
}

#[test]
fn udp_bind_migrates_session_to_application() {
    let mut bed = lib_bed();
    let app = bed.hosts[0].spawn_app();
    let server = bed.hosts[0].server.clone().unwrap();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    assert_eq!(app.borrow().stats.migrations_in, 0);
    AppLib::bind(&app, &mut bed.sim, fd, 7777).unwrap();
    // "UDP sessions migrate to the application" on bind.
    assert_eq!(app.borrow().stats.migrations_in, 1);
    assert_eq!(server.borrow().stats.migrations_out, 1);
    // The port is reserved at the server even though the session is out.
    assert!(server.borrow().ports().in_use(Proto::Udp, 7777));
    // The library stack owns the socket now.
    assert_eq!(
        app.borrow().local_addr(fd),
        Some(InetAddr::new(bed.hosts[0].ip, 7777))
    );
}

#[test]
fn tcp_bind_claims_port_without_migration() {
    let mut bed = lib_bed();
    let app = bed.hosts[0].spawn_app();
    let server = bed.hosts[0].server.clone().unwrap();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Tcp);
    AppLib::bind(&app, &mut bed.sim, fd, 8888).unwrap();
    // "For TCP, only the local endpoint is returned … because the
    // remote endpoint is not yet known."
    assert_eq!(app.borrow().stats.migrations_in, 0);
    assert!(server.borrow().ports().in_use(Proto::Tcp, 8888));
}

#[test]
fn duplicate_bind_rejected_by_port_manager() {
    let mut bed = lib_bed();
    let app1 = bed.hosts[0].spawn_app();
    let app2 = bed.hosts[0].spawn_app();
    let fd1 = AppLib::socket(&app1, &mut bed.sim, Proto::Udp);
    let fd2 = AppLib::socket(&app2, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app1, &mut bed.sim, fd1, 5555).unwrap();
    let err = AppLib::bind(&app2, &mut bed.sim, fd2, 5555).unwrap_err();
    assert_eq!(err, psd::netstack::SocketError::AddrInUse);
}

#[test]
fn connect_migrates_tcp_session_after_handshake() {
    let mut bed = lib_bed();
    let server_app = bed.hosts[1].spawn_app();
    tcp_echo_server(&mut bed, &server_app, 80);
    let app = bed.hosts[0].spawn_app();
    let dst = InetAddr::new(bed.hosts[1].ip, 80);
    let client = tcp_client(&mut bed, &app, dst);
    assert!(run_until(&mut bed, SimTime::from_secs(5), || {
        *client.connected.borrow()
    }));
    // Both the active side (connect) and the passive side (accept)
    // migrated.
    assert_eq!(app.borrow().stats.migrations_in, 1);
    assert!(server_app.borrow().stats.migrations_in >= 1);
    // The established session carries the remote endpoint.
    assert_eq!(
        app.borrow().remote_addr(client.fd),
        Some(InetAddr::new(bed.hosts[1].ip, 80))
    );
}

#[test]
fn send_recv_do_not_contact_the_server_in_library_mode() {
    let mut bed = lib_bed();
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let app = bed.hosts[0].spawn_app();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd, 9000).unwrap();
    AppLib::connect(&app, &mut bed.sim, fd, InetAddr::new(bed.hosts[1].ip, 53)).unwrap();
    bed.settle();
    // One warmup round trip lets the metastate cache fill (the first
    // send may consult the server's ARP service once).
    AppLib::sendto(&app, &mut bed.sim, fd, b"warm", None).unwrap();
    bed.settle();
    let mut buf = [0u8; 16];
    let _ = AppLib::recvfrom(&app, &mut bed.sim, fd, &mut buf);

    let rpcs_before = app.borrow().stats.control_rpcs;
    let data_rpcs_before = app.borrow().stats.data_rpcs;
    // "Transfer data to or from the network. The operating system is
    // not involved."
    for _ in 0..20 {
        AppLib::sendto(&app, &mut bed.sim, fd, b"ping", None).unwrap();
        bed.settle();
        let mut buf = [0u8; 16];
        let _ = AppLib::recvfrom(&app, &mut bed.sim, fd, &mut buf);
    }
    assert_eq!(app.borrow().stats.control_rpcs, rpcs_before);
    assert_eq!(app.borrow().stats.data_rpcs, data_rpcs_before);
}

#[test]
fn server_based_mode_pays_rpcs_for_data() {
    let mut bed = TestBed::new(SystemConfig::UxServer, Platform::DecStation5000_200, 22);
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let app = bed.hosts[0].spawn_app();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd, 9000).unwrap();
    AppLib::connect(&app, &mut bed.sim, fd, InetAddr::new(bed.hosts[1].ip, 53)).unwrap();
    bed.settle();
    let before = app.borrow().stats.data_rpcs;
    AppLib::sendto(&app, &mut bed.sim, fd, b"ping", None).unwrap();
    assert!(app.borrow().stats.data_rpcs > before);
}

#[test]
fn fork_returns_sessions_and_shares_descriptors() {
    let mut bed = lib_bed();
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd, 9000).unwrap();
    assert_eq!(app.borrow().stats.migrations_in, 1);

    // "All sessions should be returned to the operating system before
    // fork is called."
    let child = AppLib::fork(&app, &mut bed.sim).expect("fork");
    assert_eq!(app.borrow().stats.migrations_out, 1);
    assert!(os.borrow().stats.migrations_in >= 1);
    assert_ne!(app.borrow().proc_id(), child.borrow().proc_id());

    // Both parent and child can use the shared descriptor — routed
    // through the server now.
    bed.settle();
    AppLib::sendto(
        &app,
        &mut bed.sim,
        fd,
        b"from parent",
        Some(InetAddr::new(bed.hosts[1].ip, 53)),
    )
    .unwrap();
    AppLib::sendto(
        &child,
        &mut bed.sim,
        fd,
        b"from child",
        Some(InetAddr::new(bed.hosts[1].ip, 53)),
    )
    .unwrap();
    assert!(app.borrow().stats.data_rpcs >= 1);
    assert!(child.borrow().stats.data_rpcs >= 1);
    bed.settle();
}

#[test]
fn close_returns_session_and_releases_port() {
    let mut bed = lib_bed();
    let app = bed.hosts[0].spawn_app();
    let os = bed.hosts[0].server.clone().unwrap();
    let fd = AppLib::socket(&app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd, 7000).unwrap();
    assert!(os.borrow().ports().in_use(Proto::Udp, 7000));
    AppLib::close(&app, &mut bed.sim, fd);
    bed.settle();
    // The session migrated back and was torn down; the port is free.
    assert!(!os.borrow().ports().in_use(Proto::Udp, 7000));
    assert!(os.borrow().stats.migrations_in >= 1);
    assert!(!app.borrow().fd_exists(fd));
}

#[test]
fn all_ten_data_call_spellings_work() {
    // "recv, recvfrom, recvmsg, read, readv, and send, sendto, sendmsg,
    // write, and writev … are implemented entirely within the
    // application's protocol library."
    let mut bed = lib_bed();
    let server_app = bed.hosts[1].spawn_app();
    udp_echo_server(&mut bed, &server_app, 53);
    let app = bed.hosts[0].spawn_app();
    let fd = AppLib::socket(&app, &mut bed.sim, psd::server::Proto::Udp);
    AppLib::bind(&app, &mut bed.sim, fd, 9000).unwrap();
    AppLib::connect(&app, &mut bed.sim, fd, InetAddr::new(bed.hosts[1].ip, 53)).unwrap();
    bed.settle();

    // One priming exchange fills the library's ARP cache (the first
    // send costs a one-time metastate resolver RPC, §3.3) so the ten
    // spellings below run in steady state.
    AppLib::send(&app, &mut bed.sim, fd, b"prime").unwrap();
    bed.settle();
    let mut prime = [0u8; 16];
    assert_eq!(AppLib::recv(&app, &mut bed.sim, fd, &mut prime), Ok(5));

    // Count everything from here on: the ten data-call spellings must
    // execute without a single RPC-layer boundary crossing.
    let censuses = bed.attach_census();

    // send / write / sendto / sendmsg / writev.
    AppLib::send(&app, &mut bed.sim, fd, b"one ").unwrap();
    bed.settle();
    AppLib::write(&app, &mut bed.sim, fd, b"two ").unwrap();
    bed.settle();
    AppLib::sendto(&app, &mut bed.sim, fd, b"three ", None).unwrap();
    bed.settle();
    AppLib::sendmsg(&app, &mut bed.sim, fd, &[b"fo", b"ur "], None).unwrap();
    bed.settle();
    AppLib::writev(&app, &mut bed.sim, fd, &[b"five"]).unwrap();
    bed.settle();

    // recv / read / recvfrom / recvmsg / readv.
    let mut collected = Vec::new();
    let mut buf = [0u8; 64];
    let n = AppLib::recv(&app, &mut bed.sim, fd, &mut buf).unwrap();
    collected.extend_from_slice(&buf[..n]);
    let n = AppLib::read(&app, &mut bed.sim, fd, &mut buf).unwrap();
    collected.extend_from_slice(&buf[..n]);
    let (n, _) = AppLib::recvfrom(&app, &mut bed.sim, fd, &mut buf).unwrap();
    collected.extend_from_slice(&buf[..n]);
    let mut a = [0u8; 2];
    let mut b = [0u8; 62];
    let (n, from) = AppLib::recvmsg(&app, &mut bed.sim, fd, &mut [&mut a[..], &mut b[..]]).unwrap();
    assert_eq!(from, InetAddr::new(bed.hosts[1].ip, 53));
    collected.extend_from_slice(&a[..n.min(2)]);
    if n > 2 {
        collected.extend_from_slice(&b[..n - 2]);
    }
    let mut c = [0u8; 64];
    let n = AppLib::readv(&app, &mut bed.sim, fd, &mut [&mut c[..]]).unwrap();
    collected.extend_from_slice(&c[..n]);

    assert_eq!(collected, b"one two three four five");
    // None of the data calls contacted the server (library mode): the
    // only RPCs were socket/bind/connect(+1 ARP prewarm at most).
    assert!(app.borrow().stats.data_rpcs == 0);
    // The census agrees: on the client host no boundary was crossed at
    // any RPC layer while the ten spellings ran — entry/copyin and
    // copyout/exit crossings belong to the server-based architecture,
    // control crossings to proxy RPCs, and none occurred.
    {
        use psd::sim::{Domain, Layer, OpKind};
        let c0 = censuses[0].borrow();
        for layer in [Layer::EntryCopyin, Layer::CopyoutExit, Layer::Control] {
            assert_eq!(
                c0.layer_total(OpKind::BoundaryCrossing, layer),
                0,
                "no crossings at {layer:?} during library data calls"
            );
        }
        assert_eq!(
            c0.domain_total(OpKind::BoundaryCrossing, Domain::Server),
            0,
            "the operating system server never entered the data path"
        );
        // The only crossings the five sends need: one packet-send trap
        // each into the kernel at the ethernet layer.
        assert_eq!(
            c0.count(OpKind::BoundaryCrossing, Domain::Kernel, Layer::EtherOutput),
            5,
            "one send trap per send-side spelling"
        );
    }
}
