//! Interpreter ≡ compiled-tier equivalence (the compile-tier contract).
//!
//! The compile tier (`psd::filter::compiled`) promises *observational
//! identity*: for every program and every byte string, the compiled
//! artifact reproduces the interpreter's entire `FilterOutcome` —
//! verdict, step count, and abnormal-termination cause — bit for bit.
//! Everything downstream (demux owner choice, census charging, virtual
//! time, traces) follows from that triple, so proving the triple equal
//! proves the engines indistinguishable.
//!
//! These tests attack the contract with seeded differential fuzzing:
//! adversarial programs (mutated canonical filters, random instruction
//! soup, budget bursters, underflow-prone combine chains) crossed with
//! adversarial frames (runts, fragments, IP options, ARP, maximal, and
//! raw random bytes), well past ten thousand program×frame cases; plus
//! demux-table-level equivalence under both strategies, insert/remove
//! interleavings pinning incremental artifact maintenance to a fresh
//! rebuild, and a property test on the endpoint compiler's lowering.
//!
//! Every generator is driven by the seeded `psd::sim::Rng`, so a
//! failure reproduces exactly from the seed printed in the panic.

use psd::filter::{
    catch_all_ip, compile_endpoint, Binop, CompiledFilter, DemuxStrategy, DemuxTable, EndpointSpec,
    FilterEngine, FilterId, Insn, Program, VmError, MAX_STEPS,
};
use psd::sim::Rng;
use psd::wire::{
    EtherAddr, EtherType, EthernetHeader, IpProto, Ipv4Header, TcpFlags, TcpHeader, UdpHeader,
};
use std::net::Ipv4Addr;

/// Runs `body` for `cases` deterministic cases, each with its own
/// forked stream. The per-case seed appears in panic messages.
fn cases(base_seed: u64, cases: u32, mut body: impl FnMut(&mut Rng)) {
    let mut root = Rng::new(base_seed);
    for case in 0..cases {
        let seed = root.next_u64();
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&mut rng)));
        if let Err(e) = result {
            eprintln!("property failed at case {case} (seed {seed:#x})");
            std::panic::resume_unwind(e);
        }
    }
}

const HOST_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

// ---------------------------------------------------------------------
// Program generators
// ---------------------------------------------------------------------

const ALL_BINOPS: [Binop; 11] = [
    Binop::Eq,
    Binop::Ne,
    Binop::Lt,
    Binop::Le,
    Binop::Gt,
    Binop::Ge,
    Binop::And,
    Binop::Or,
    Binop::Xor,
    Binop::Add,
    Binop::Sub,
];

fn rand_binop(rng: &mut Rng) -> Binop {
    ALL_BINOPS[rng.below(ALL_BINOPS.len() as u64) as usize]
}

/// A random instruction. Word offsets are biased toward the header
/// region (in bounds for ordinary frames) with a tail of wild offsets
/// that are out of bounds for everything.
fn rand_insn(rng: &mut Rng) -> Insn {
    match rng.below(12) {
        0..=2 => Insn::PushLit(rng.next_u64() as u16),
        3..=5 => Insn::PushWord(if rng.chance(0.8) {
            rng.below(64) as u16
        } else {
            rng.below(3000) as u16
        }),
        6 | 7 => Insn::Op(rand_binop(rng)),
        8 => Insn::CombineOr(rand_binop(rng)),
        9 | 10 => Insn::CombineAnd(rand_binop(rng)),
        _ => Insn::Ret,
    }
}

fn rand_spec(rng: &mut Rng) -> EndpointSpec {
    let proto = if rng.chance(0.3) {
        IpProto::Tcp
    } else {
        IpProto::Udp
    };
    let lport = rng.range(1000, 1040) as u16;
    if rng.chance(0.5) {
        EndpointSpec::connected(
            proto,
            HOST_IP,
            lport,
            Ipv4Addr::new(10, 0, 0, rng.range(1, 4) as u8),
            rng.range(2000, 2007) as u16,
        )
    } else {
        EndpointSpec::unconnected(proto, HOST_IP, lport)
    }
}

/// Applies one structure-breaking mutation to a canonical program.
/// Each mutation can knock the program off the recognizer fast path,
/// change its verdict, or leave it semantically identical — all three
/// outcomes must still agree between the engines.
fn mutate(rng: &mut Rng, insns: &mut Vec<Insn>) {
    if insns.is_empty() {
        insns.push(rand_insn(rng));
        return;
    }
    let i = rng.below(insns.len() as u64) as usize;
    match rng.below(7) {
        0 => {
            // Flip bits in a literal (or replace the insn otherwise).
            if let Insn::PushLit(v) = insns[i] {
                insns[i] = Insn::PushLit(v ^ (1 << rng.below(16)));
            } else {
                insns[i] = rand_insn(rng);
            }
        }
        1 => {
            // Perturb a word offset, possibly past the packet end.
            if let Insn::PushWord(off) = insns[i] {
                insns[i] = Insn::PushWord(off.wrapping_add(rng.range(1, 2000) as u16));
            } else {
                insns[i] = rand_insn(rng);
            }
        }
        2 => insns[i] = rand_insn(rng),
        3 => {
            let j = rng.below(insns.len() as u64) as usize;
            insns.swap(i, j);
        }
        4 => insns.truncate(i), // may drop the Ret entirely
        5 => {
            insns.remove(i);
        }
        _ => insns.insert(i, rand_insn(rng)),
    }
}

/// One adversarial program drawn from the six classes. Returns the
/// class index so the harness can prove each class was exercised.
fn rand_program(rng: &mut Rng) -> (Program, usize) {
    let class = rng.below(6) as usize;
    let insns = match class {
        // Canonical session filters and the catch-all: the recognizer's
        // home turf.
        0 => {
            if rng.chance(0.15) {
                catch_all_ip().insns
            } else {
                compile_endpoint(&rand_spec(rng)).insns
            }
        }
        // Mutated canonical: near misses of the recognizable shape.
        1 => {
            let mut insns = compile_endpoint(&rand_spec(rng)).insns;
            for _ in 0..rng.range(1, 3) {
                mutate(rng, &mut insns);
            }
            insns
        }
        // Random instruction soup, Ret included.
        2 => (0..rng.below(40)).map(|_| rand_insn(rng)).collect(),
        // Budget bursters: lengths straddling MAX_STEPS, built from
        // pushes so execution reaches the budget edge (a Ret or an
        // underflow would end the run early).
        3 => {
            let len = rng.range(MAX_STEPS as u64 - 4, MAX_STEPS as u64 + 16) as usize;
            (0..len)
                .map(|_| {
                    if rng.chance(0.1) {
                        Insn::PushWord(rng.below(40) as u16)
                    } else {
                        Insn::PushLit(rng.next_u64() as u16)
                    }
                })
                .collect()
        }
        // Combine-heavy: operators outnumber pushes, so underflow is
        // the common ending.
        4 => (0..rng.range(1, 24))
            .map(|_| match rng.below(4) {
                0 => Insn::PushLit(rng.next_u64() as u16),
                1 => Insn::Op(rand_binop(rng)),
                2 => Insn::CombineOr(rand_binop(rng)),
                _ => Insn::CombineAnd(rand_binop(rng)),
            })
            .collect(),
        // No terminator: exercises the implicit fall-off-the-end Ret.
        _ => (0..rng.below(20))
            .map(|_| loop {
                let i = rand_insn(rng);
                if i != Insn::Ret {
                    return i;
                }
            })
            .collect(),
    };
    (Program::new(insns), class)
}

// ---------------------------------------------------------------------
// Frame generators
// ---------------------------------------------------------------------

struct FrameSpec {
    tcp: bool,
    src: (Ipv4Addr, u16),
    dst: (Ipv4Addr, u16),
    frag_offset: u16,
    more_fragments: bool,
    truncate: Option<usize>,
}

fn build_frame(fs: &FrameSpec) -> Vec<u8> {
    let proto = if fs.tcp { IpProto::Tcp } else { IpProto::Udp };
    let tl = if fs.tcp { 20 } else { 8 };
    let mut ip = Ipv4Header::new(fs.src.0, fs.dst.0, proto, tl);
    ip.frag_offset = fs.frag_offset;
    ip.more_fragments = fs.more_fragments;
    let eth = EthernetHeader {
        dst: EtherAddr::local(2),
        src: EtherAddr::local(1),
        ethertype: EtherType::Ipv4,
    };
    let mut f = eth.encode().to_vec();
    f.extend_from_slice(&ip.encode());
    if fs.tcp {
        let h = TcpHeader {
            src_port: fs.src.1,
            dst_port: fs.dst.1,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            window: 0,
            urgent: 0,
            mss: None,
        };
        f.extend_from_slice(&h.encode());
    } else {
        f.extend_from_slice(&UdpHeader::new(fs.src.1, fs.dst.1, 0).encode());
    }
    if let Some(len) = fs.truncate {
        f.truncate(len);
    }
    f
}

/// The well-formed frame a given endpoint spec accepts.
fn matching_frame(spec: &EndpointSpec) -> Vec<u8> {
    let (rip, rport) = spec.remote.unwrap_or((Ipv4Addr::new(10, 0, 0, 3), 2004));
    build_frame(&FrameSpec {
        tcp: spec.proto == IpProto::Tcp,
        src: (rip, rport),
        dst: (spec.local_ip, spec.local_port),
        frag_offset: 0,
        more_fragments: false,
        truncate: None,
    })
}

/// Rewrites a frame to carry a 4-byte IP option: IHL bumped to 6 and a
/// no-op option word spliced in after the fixed header. The session
/// prefix's version/IHL check must reject it; the engines must agree.
fn with_ip_options(frame: &[u8]) -> Vec<u8> {
    let mut f = frame.to_vec();
    if f.len() < 34 {
        return f;
    }
    f[14] = 0x46; // version 4, IHL 6
                  // NOP, NOP, NOP, EOL.
    let options = [0x01, 0x01, 0x01, 0x00];
    let insert_at = 14 + 20;
    for (i, b) in options.iter().enumerate() {
        f.insert(insert_at + i, *b);
    }
    f
}

fn arp_frame() -> Vec<u8> {
    let p = psd::wire::ArpPacket::request(EtherAddr::local(1), Ipv4Addr::new(10, 0, 0, 1), HOST_IP);
    let eth = EthernetHeader {
        dst: EtherAddr::BROADCAST,
        src: EtherAddr::local(1),
        ethertype: EtherType::Arp,
    };
    let mut f = eth.encode().to_vec();
    f.extend_from_slice(&p.encode());
    f
}

/// One adversarial frame drawn from the seven classes.
fn rand_adversarial_frame(rng: &mut Rng) -> Vec<u8> {
    let base = FrameSpec {
        tcp: rng.chance(0.3),
        src: (
            Ipv4Addr::new(10, 0, 0, rng.range(1, 5) as u8),
            rng.range(2000, 2009) as u16,
        ),
        dst: (HOST_IP, rng.range(1000, 1044) as u16),
        frag_offset: 0,
        more_fragments: false,
        truncate: None,
    };
    match rng.below(7) {
        // Runts: every length from empty to just past the headers.
        0 => {
            let mut f = build_frame(&base);
            f.truncate(rng.below(43) as usize);
            f
        }
        // Fragments.
        1 => {
            let mut fs = base;
            fs.frag_offset = rng.range(1, 100) as u16 * 8;
            fs.more_fragments = rng.chance(0.5);
            build_frame(&fs)
        }
        // IP options.
        2 => with_ip_options(&build_frame(&base)),
        // ARP.
        3 => arp_frame(),
        // Maximal: padded to the classic 1514-byte Ethernet MTU frame.
        4 => {
            let mut f = build_frame(&base);
            while f.len() < 1514 {
                f.push(rng.next_u64() as u8);
            }
            f
        }
        // Raw random bytes: no structure at all.
        5 => (0..rng.below(120)).map(|_| rng.next_u64() as u8).collect(),
        // Well-formed, in-range frames (the happy path must agree too).
        _ => build_frame(&base),
    }
}

// ---------------------------------------------------------------------
// The headline differential harness
// ---------------------------------------------------------------------

/// ≥10,000 adversarial program×frame cases: the compiled artifact must
/// reproduce the interpreter's `FilterOutcome` — verdict, steps, and
/// error — exactly, on every case. Vacuity guards prove the corpus
/// actually reached accepts, ordinary rejects, all three abnormal
/// causes, both compiled tiers, and every program class.
#[test]
fn compiled_tier_matches_interpreter_on_adversarial_corpus() {
    const PROGRAMS: u32 = 1500;
    const FRAMES_PER_PROGRAM: usize = 8;

    let mut total = 0u64;
    let mut accepts = 0u64;
    let mut plain_rejects = 0u64;
    let mut oob = 0u64;
    let mut underflow = 0u64;
    let mut budget = 0u64;
    let mut fast_path_programs = 0u64;
    let mut threaded_programs = 0u64;
    let mut class_seen = [0u64; 6];

    cases(0xf11e_c0de, PROGRAMS, |rng| {
        let (program, class) = rand_program(rng);
        let compiled = CompiledFilter::compile(&program);
        class_seen[class] += 1;
        if compiled.is_fast_path() {
            fast_path_programs += 1;
        } else {
            threaded_programs += 1;
        }
        for _ in 0..FRAMES_PER_PROGRAM {
            let frame = rand_adversarial_frame(rng);
            let reference = program.run(&frame);
            let observed = compiled.run(&frame);
            assert_eq!(
                reference, observed,
                "engines diverge on program {:?} frame {:02x?}",
                program.insns, frame
            );
            total += 1;
            if reference.accepted {
                accepts += 1;
            }
            match reference.error {
                None if !reference.accepted => plain_rejects += 1,
                Some(VmError::OutOfBounds) => oob += 1,
                Some(VmError::StackUnderflow) => underflow += 1,
                Some(VmError::StepBudget) => budget += 1,
                None => {}
            }
        }
    });

    // Vacuity guards: the corpus must be adversarial in fact, not just
    // in intent. A generator regression that stops producing one of
    // these outcomes turns the whole harness into a no-op.
    assert!(total >= 10_000, "only {total} cases ran");
    assert!(accepts > 0, "corpus never accepted");
    assert!(plain_rejects > 0, "corpus never ordinarily rejected");
    assert!(oob > 0, "corpus never hit OutOfBounds");
    assert!(underflow > 0, "corpus never hit StackUnderflow");
    assert!(budget > 0, "corpus never hit StepBudget");
    assert!(fast_path_programs > 0, "recognizer tier never exercised");
    assert!(threaded_programs > 0, "threaded tier never exercised");
    for (class, seen) in class_seen.iter().enumerate() {
        assert!(*seen > 0, "program class {class} never generated");
    }
}

/// The recognizer's step accounting is the subtle half of the
/// contract: a dedicated sweep pins it on canonical programs, where
/// every reject path (prefix miss, endpoint miss, out-of-bounds read)
/// must charge exactly the interpreter's short-circuit step count.
#[test]
fn recognizer_step_accounting_matches_on_canonical_programs() {
    cases(0xf11e_57e9, 400, |rng| {
        let spec = rand_spec(rng);
        let program = compile_endpoint(&spec);
        let compiled = CompiledFilter::compile(&program);
        assert!(compiled.is_fast_path(), "canonical shape must lower");
        // The matching frame, every prefix of it, and mutations of
        // every single byte: each probes a different reject point.
        let matching = matching_frame(&spec);
        for len in 0..=matching.len() {
            let f = &matching[..len];
            assert_eq!(program.run(f), compiled.run(f), "prefix len {len}");
        }
        for _ in 0..24 {
            let mut f = matching.clone();
            let i = rng.below(f.len() as u64) as usize;
            f[i] ^= 1 << rng.below(8);
            assert_eq!(program.run(&f), compiled.run(&f), "flip at byte {i}");
        }
    });
}

// ---------------------------------------------------------------------
// Demux-table-level equivalence
// ---------------------------------------------------------------------

fn grow_engine_pair(
    rng: &mut Rng,
    strategy: DemuxStrategy,
    n: usize,
) -> (DemuxTable<usize>, DemuxTable<usize>) {
    let mut interp: DemuxTable<usize> = DemuxTable::with_engine(strategy, FilterEngine::Interpret);
    let mut comp: DemuxTable<usize> = DemuxTable::with_engine(strategy, FilterEngine::Compiled);
    let mut seen = std::collections::HashSet::new();
    let mut owner = 0usize;
    while owner < n {
        let spec = rand_spec(rng);
        if !seen.insert(spec) {
            continue;
        }
        interp.install(spec, owner);
        comp.install(spec, owner);
        owner += 1;
    }
    (interp, comp)
}

/// Under either strategy, a table running the compiled tier classifies
/// every frame to the same owner with the same charged step count as a
/// table running the interpreter.
#[test]
fn demux_owners_and_steps_identical_under_either_engine() {
    for strategy in [DemuxStrategy::Cspf, DemuxStrategy::Mpf] {
        for n in [4usize, 16, 64] {
            cases(0xf11e_0000 + n as u64, 12, |rng| {
                let (interp, comp) = grow_engine_pair(rng, strategy, n);
                assert_eq!(comp.compiled_artifacts(), comp.len());
                for _ in 0..48 {
                    let frame = rand_adversarial_frame(rng);
                    let a = interp.classify(&frame);
                    let b = comp.classify(&frame);
                    assert_eq!(
                        a.owner, b.owner,
                        "{strategy:?} N={n}: owners diverge on {frame:02x?}"
                    );
                    assert_eq!(
                        a.steps, b.steps,
                        "{strategy:?} N={n}: charged steps diverge on {frame:02x?}"
                    );
                }
            });
        }
    }
}

/// Toggling the engine on a live, fully-populated table is free: the
/// artifacts were built at install time, so classification is
/// identical before and after the flip — in both directions.
#[test]
fn engine_toggle_on_live_table_is_invisible() {
    for strategy in [DemuxStrategy::Cspf, DemuxStrategy::Mpf] {
        cases(0xf11e_1062 + strategy as u64, 8, |rng| {
            let (mut table, _) = grow_engine_pair(rng, strategy, 32);
            let frames: Vec<Vec<u8>> = (0..32).map(|_| rand_adversarial_frame(rng)).collect();
            let before: Vec<_> = frames
                .iter()
                .map(|f| {
                    let r = table.classify(f);
                    (r.owner, r.steps)
                })
                .collect();
            table.set_engine(FilterEngine::Compiled);
            for (f, want) in frames.iter().zip(&before) {
                let r = table.classify(f);
                assert_eq!(
                    (r.owner, r.steps),
                    *want,
                    "{strategy:?}: flip changed result"
                );
            }
            table.set_engine(FilterEngine::Interpret);
            for (f, want) in frames.iter().zip(&before) {
                let r = table.classify(f);
                assert_eq!(
                    (r.owner, r.steps),
                    *want,
                    "{strategy:?}: flip back changed result"
                );
            }
        });
    }
}

/// Random install/remove interleavings under the compiled engine: the
/// incrementally-maintained table classifies exactly like a fresh
/// rebuild of the survivors, and its artifact table never leaks (one
/// artifact per live filter, no more, after every step).
#[test]
fn incremental_compiled_artifacts_match_fresh_rebuild() {
    cases(0xf11e_2222, 12, |rng| {
        for strategy in [DemuxStrategy::Cspf, DemuxStrategy::Mpf] {
            let mut live: DemuxTable<usize> =
                DemuxTable::with_engine(strategy, FilterEngine::Compiled);
            let mut ids: Vec<(FilterId, EndpointSpec, usize)> = Vec::new();
            for step in 0..rng.range(50, 250) as usize {
                if !ids.is_empty() && rng.chance(0.4) {
                    let idx = rng.below(ids.len() as u64) as usize;
                    let (id, _, _) = ids.swap_remove(idx);
                    assert!(live.remove(id));
                    assert!(!live.remove(id), "double remove must fail");
                } else {
                    let spec = rand_spec(rng);
                    let id = live.install(spec, step);
                    ids.push((id, spec, step));
                }
                // The artifact table tracks the live set exactly: a
                // leak (artifact outliving its filter) or a miss
                // (filter without an artifact) both fail here.
                assert_eq!(live.compiled_artifacts(), live.len());
            }
            ids.sort_by_key(|(id, _, _)| id.0);
            let mut fresh: DemuxTable<usize> =
                DemuxTable::with_engine(strategy, FilterEngine::Compiled);
            for (_, spec, owner) in &ids {
                fresh.install(*spec, *owner);
            }
            assert_eq!(live.len(), fresh.len());
            assert_eq!(live.compiled_artifacts(), fresh.compiled_artifacts());
            for _ in 0..48 {
                let frame = rand_adversarial_frame(rng);
                let a = live.classify(&frame);
                let b = fresh.classify(&frame);
                assert_eq!(a.owner.map(|o| o.1), b.owner.map(|o| o.1), "{strategy:?}");
                assert_eq!(a.steps, b.steps, "{strategy:?}: steps diverge");
            }
        }
    });
}

// ---------------------------------------------------------------------
// Endpoint-lowering property (satellite: compile.rs § recognizer)
// ---------------------------------------------------------------------

/// Every compiled endpoint spec lowers to the recognizer fast path and
/// accepts exactly its own frames: the matching frame passes, and the
/// fragment / IP-options / wrong-protocol / wrong-port variants all
/// fail — under both engines, with identical outcomes.
#[test]
fn endpoint_lowering_accepts_own_frames_and_rejects_variants() {
    cases(0xf11e_3333, 300, |rng| {
        let spec = rand_spec(rng);
        let program = compile_endpoint(&spec);
        let compiled = CompiledFilter::compile(&program);
        assert!(compiled.is_fast_path(), "endpoint programs must lower");

        let good = matching_frame(&spec);
        assert!(program.run(&good).accepted, "own frame must match");
        assert_eq!(program.run(&good), compiled.run(&good));

        // Fragment variant: set a nonzero fragment offset.
        let mut frag = good.clone();
        frag[20] = 0x00;
        frag[21] = 0x08;
        assert!(!program.run(&frag).accepted, "fragments never match");
        assert_eq!(program.run(&frag), compiled.run(&frag));

        // IP-options variant.
        let opts = with_ip_options(&good);
        assert!(!program.run(&opts).accepted, "options never match");
        assert_eq!(program.run(&opts), compiled.run(&opts));

        // Wrong transport protocol (UDP <-> TCP in the proto byte; the
        // port words keep their offsets, only the proto check differs).
        let mut wrong_proto = good.clone();
        wrong_proto[23] = if spec.proto == IpProto::Udp { 6 } else { 17 };
        assert!(!program.run(&wrong_proto).accepted);
        assert_eq!(program.run(&wrong_proto), compiled.run(&wrong_proto));

        // Wrong destination port.
        let mut wrong_port = good.clone();
        wrong_port[37] ^= 0x01;
        assert!(!program.run(&wrong_port).accepted);
        assert_eq!(program.run(&wrong_port), compiled.run(&wrong_port));

        // Connected sessions also reject a wrong remote.
        if spec.remote.is_some() {
            let mut wrong_remote = good.clone();
            wrong_remote[29] ^= 0x40;
            assert!(!program.run(&wrong_remote).accepted);
            assert_eq!(program.run(&wrong_remote), compiled.run(&wrong_remote));
        }
    });
}
