//! Protocol Service Decomposition for High-Performance Networking.
//!
//! A full reproduction of Maeda & Bershad's SOSP 1993 system: TCP/IP
//! and UDP/IP implemented as an application-linked library, with an
//! operating-system server managing the heavyweight socket
//! abstractions, over a simulated Mach 3.0-style kernel and a 10 Mb/s
//! Ethernet.
//!
//! This facade crate re-exports the workspace so examples and
//! integration tests can `use psd::…`. See the individual crates for
//! the substance:
//!
//! - [`core`] (`psd-core`): the application protocol library — the
//!   paper's contribution.
//! - [`server`] (`psd-server`): the operating system server.
//! - [`netstack`] (`psd-netstack`): the shared TCP/IP/UDP protocol
//!   stack.
//! - [`kernel`] (`psd-kernel`): the packet send/receive interface with
//!   the IPC / SHM / SHM-IPF receive paths.
//! - [`filter`] (`psd-filter`): the packet-filter VM and demux table.
//! - [`systems`] (`psd-systems`): whole-system assembly of the paper's
//!   eight configurations.
//! - `bench` (`psd-bench`): `ttcp`, `protolat`, and the Table 2/3/4
//!   harnesses.

pub use psd_bench as bench;
pub use psd_core as core;
pub use psd_filter as filter;
pub use psd_kernel as kernel;
pub use psd_mbuf as mbuf;
pub use psd_netdev as netdev;
pub use psd_netstack as netstack;
pub use psd_server as server;
pub use psd_sim as sim;
pub use psd_systems as systems;
pub use psd_wire as wire;
