//! Bulk transfer: the `ttcp` workload across all DECstation
//! configurations, plus the NEWAPI shared-buffer interface — a compact
//! reproduction of the throughput column of Tables 2 and 3.
//!
//! Run with: `cargo run --release --example bulk_transfer [-- --mb 16]`

use psd::bench::{ttcp, ApiStyle};
use psd::sim::Platform;
use psd::systems::{SystemConfig, TestBed};

fn main() {
    let mb: usize = std::env::args()
        .skip_while(|a| a != "--mb")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let total = mb << 20;
    let platform = Platform::DecStation5000_200;

    println!("ttcp: {mb} MB memory-to-memory TCP transfer, 10 Mb/s Ethernet\n");
    println!(
        "{:<30} {:>10} {:>12}",
        "configuration", "KB/s", "virtual time"
    );
    for config in SystemConfig::for_platform(platform) {
        let mut bed = TestBed::new(config, platform, 42);
        let r = ttcp(&mut bed, total, ApiStyle::Classic);
        println!(
            "{:<30} {:>10.0} {:>12}",
            config.label(),
            r.kb_per_sec,
            format!("{}", r.elapsed)
        );
        assert_eq!(r.retransmits, 0, "clean wire must not retransmit");
    }

    println!("\nwith the NEWAPI shared-buffer interface (§4.2):");
    for config in [SystemConfig::LibraryIpc, SystemConfig::LibraryShmIpf] {
        let mut bed = TestBed::new(config, platform, 42);
        let classic = ttcp(&mut bed, total, ApiStyle::Classic).kb_per_sec;
        let mut bed = TestBed::new(config, platform, 42);
        let newapi = ttcp(&mut bed, total, ApiStyle::Newapi).kb_per_sec;
        println!(
            "{:<30} {:>7.0} → {:>5.0} KB/s  ({:+.1}%)",
            config.label(),
            classic,
            newapi,
            (newapi / classic - 1.0) * 100.0
        );
    }
}
