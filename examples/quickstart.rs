//! Quickstart: two simulated hosts, the decomposed protocol
//! architecture, one UDP round trip.
//!
//! Run with: `cargo run --example quickstart`

use psd::core::{AppLib, Fd, FdEventFn};
use psd::netstack::{InetAddr, SockEvent};
use psd::server::Proto;
use psd::sim::Platform;
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    // Two DECstations on a private 10 Mb/s Ethernet, running the
    // paper's system: protocols in an application-linked library, with
    // the SHM-IPF receive path.
    let mut bed = TestBed::new(SystemConfig::LibraryShmIpf, Platform::DecStation5000_200, 1);
    println!("configuration : {}", bed.config.label());
    println!(
        "hosts         : {} and {}\n",
        bed.hosts[0].ip, bed.hosts[1].ip
    );

    // An echo server on host B. socket() and bind() are proxy calls to
    // the OS server; for UDP, bind migrates the session into the
    // application, so everything after this runs without the OS.
    let server_app = bed.hosts[1].spawn_app();
    let sfd = AppLib::socket(&server_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&server_app, &mut bed.sim, sfd, 7).unwrap();
    {
        let app = server_app.clone();
        let handler: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                if ev == SockEvent::Readable {
                    let mut buf = [0u8; 256];
                    while let Ok((n, from)) = AppLib::recvfrom(&app, sim, fd, &mut buf) {
                        println!(
                            "[B @ {:>9}] echoing {:?} back to {}",
                            format!("{}", sim.now()),
                            String::from_utf8_lossy(&buf[..n]),
                            from
                        );
                        AppLib::sendto(&app, sim, fd, &buf[..n], Some(from)).unwrap();
                    }
                }
            },
        ));
        server_app.borrow_mut().set_event_handler(sfd, handler);
    }

    // A client on host A.
    let client_app = bed.hosts[0].spawn_app();
    let cfd = AppLib::socket(&client_app, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client_app, &mut bed.sim, cfd, 9000).unwrap();
    AppLib::connect(
        &client_app,
        &mut bed.sim,
        cfd,
        InetAddr::new(bed.hosts[1].ip, 7),
    )
    .unwrap();
    bed.settle();

    let done = Rc::new(RefCell::new(false));
    {
        let app = client_app.clone();
        let done = done.clone();
        let handler: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                if ev == SockEvent::Readable {
                    let mut buf = [0u8; 256];
                    if let Ok((n, _)) = AppLib::recvfrom(&app, sim, fd, &mut buf) {
                        println!(
                            "[A @ {:>9}] got reply {:?}",
                            format!("{}", sim.now()),
                            String::from_utf8_lossy(&buf[..n])
                        );
                        *done.borrow_mut() = true;
                    }
                }
            },
        ));
        client_app.borrow_mut().set_event_handler(cfd, handler);
    }

    let t0 = bed.sim.now();
    println!("[A @ {:>9}] sending \"hello, 1993\"", format!("{t0}"));
    AppLib::sendto(&client_app, &mut bed.sim, cfd, b"hello, 1993", None).unwrap();
    bed.settle();
    assert!(*done.borrow(), "round trip must complete");
    let rtt = bed.sim.now() - t0;

    println!("\nround trip      : {rtt}");
    let stats = client_app.borrow().stats;
    println!(
        "proxy RPCs      : {} (socket/bind/connect only — zero on the data path)",
        stats.control_rpcs
    );
    println!(
        "sessions moved  : {} migrated into the client",
        stats.migrations_in
    );
    let k = bed.hosts[0].kernel.borrow().stats();
    println!(
        "kernel demux    : {} frames matched a per-session packet filter",
        k.rx_session
    );
}
