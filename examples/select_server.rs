//! A concurrent service using the cooperative `select` (§3.2) and
//! `fork` (Table 1): one process watches a TCP listener (a session the
//! operating system manages) and a UDP status port (a session migrated
//! into the application) with a single select; accepted connections are
//! handled after a fork, demonstrating session return.
//!
//! Run with: `cargo run --release --example select_server`

use psd::core::{AppLib, Fd, FdEventFn, SelectOutcome};
use psd::netstack::{InetAddr, SockEvent};
use psd::server::Proto;
use psd::sim::{Platform, SimTime};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let mut bed = TestBed::new(SystemConfig::LibraryShm, Platform::DecStation5000_200, 7);

    // ---- The service process on host B ----
    let service = bed.hosts[1].spawn_app();
    // A TCP listener: lives in the operating system server.
    let listener = AppLib::socket(&service, &mut bed.sim, Proto::Tcp);
    AppLib::bind(&service, &mut bed.sim, listener, 80).unwrap();
    AppLib::listen(&service, &mut bed.sim, listener, 4).unwrap();
    // A UDP status socket: migrated into the application by bind.
    let status = AppLib::socket(&service, &mut bed.sim, Proto::Udp);
    AppLib::bind(&service, &mut bed.sim, status, 161).unwrap();
    println!("service: listener (server-managed) + status port (application-managed)");

    // One cooperative select across both kinds of descriptor.
    let outcome: Rc<RefCell<Option<SelectOutcome>>> = Rc::new(RefCell::new(None));
    {
        let o = outcome.clone();
        AppLib::select(
            &service,
            &mut bed.sim,
            vec![listener, status],
            vec![],
            Some(SimTime::from_secs(30)),
            Box::new(move |_sim, out| *o.borrow_mut() = Some(out)),
        );
    }

    // ---- Clients on host A ----
    let client = bed.hosts[0].spawn_app();
    // First stimulus: a UDP status query (hits the application-managed
    // descriptor; the library reports the status change to the server,
    // which completes the select). Bounded runs keep the select's 30 s
    // timeout from firing while we drive the scenario.
    let q = AppLib::socket(&client, &mut bed.sim, Proto::Udp);
    AppLib::bind(&client, &mut bed.sim, q, 9000).unwrap();
    AppLib::connect(
        &client,
        &mut bed.sim,
        q,
        InetAddr::new(bed.hosts[1].ip, 161),
    )
    .unwrap();
    bed.run_for(SimTime::from_millis(50));
    AppLib::sendto(&client, &mut bed.sim, q, b"status?", None).unwrap();
    bed.run_for(SimTime::from_millis(200));

    let first = outcome.borrow_mut().take().expect("select completed");
    println!(
        "select #1 woke: readable = {:?} (the UDP status socket)",
        first.readable
    );
    assert_eq!(first.readable, vec![status]);
    let mut buf = [0u8; 64];
    let (n, from) = AppLib::recvfrom(&service, &mut bed.sim, status, &mut buf).unwrap();
    println!(
        "status query {:?} from {from}",
        String::from_utf8_lossy(&buf[..n])
    );
    AppLib::sendto(
        &service,
        &mut bed.sim,
        status,
        b"2 users, load 0.93",
        Some(from),
    )
    .unwrap();

    // Second select; this time a TCP connection arrives (the
    // server-managed descriptor becomes acceptable).
    {
        let o = outcome.clone();
        AppLib::select(
            &service,
            &mut bed.sim,
            vec![listener, status],
            vec![],
            Some(SimTime::from_secs(30)),
            Box::new(move |_sim, out| *o.borrow_mut() = Some(out)),
        );
    }
    let cfd = AppLib::socket(&client, &mut bed.sim, Proto::Tcp);
    {
        let app = client.clone();
        let handler: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                if ev == SockEvent::Connected {
                    let _ = AppLib::send(&app, sim, fd, b"GET /\n");
                }
            },
        ));
        client.borrow_mut().set_event_handler(cfd, handler);
    }
    AppLib::connect(
        &client,
        &mut bed.sim,
        cfd,
        InetAddr::new(bed.hosts[1].ip, 80),
    )
    .unwrap();
    bed.run_for(SimTime::from_millis(200));

    let second = outcome.borrow_mut().take().expect("select completed");
    println!(
        "select #2 woke: readable = {:?} (the TCP listener)",
        second.readable
    );
    assert!(second.readable.contains(&listener));
    let conn = AppLib::accept(&service, &mut bed.sim, listener)
        .or_else(|_| {
            bed.run_for(SimTime::from_millis(200));
            AppLib::accept(&service, &mut bed.sim, listener)
        })
        .expect("accept");
    println!("accepted connection {conn:?} (session migrated into the service)");

    // ---- fork: sessions go back to the operating system ----
    let before = service.borrow().stats.migrations_out;
    let worker = AppLib::fork(&service, &mut bed.sim).expect("fork");
    println!(
        "fork: returned {} session(s) to the OS; child process is {:?}",
        service.borrow().stats.migrations_out - before,
        worker.borrow().proc_id().unwrap()
    );
    // The worker serves the connection through the server now.
    bed.run_for(SimTime::from_millis(200));
    let mut req = [0u8; 64];
    let n = AppLib::recv(&worker, &mut bed.sim, conn, &mut req).expect("request");
    println!(
        "worker read request {:?}",
        String::from_utf8_lossy(&req[..n])
    );
    AppLib::send(
        &worker,
        &mut bed.sim,
        conn,
        b"HTTP/0.9 200\nhello from 1993\n",
    )
    .unwrap();
    bed.run_for(SimTime::from_millis(200));
    println!("done: one process multiplexed two session kinds and forked a worker");
}
