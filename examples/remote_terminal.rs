//! A remote-terminal session (the telnet workload the paper compiled
//! against its library): single-keystroke request/echo round trips
//! over TCP, where per-packet latency — not bandwidth — is everything.
//!
//! Shows why the server-based architecture hurt interactive programs
//! and the library architecture did not.
//!
//! Run with: `cargo run --release --example remote_terminal`

use psd::core::{AppLib, Fd, FdEventFn};
use psd::netstack::{InetAddr, SockEvent, SocketError};
use psd::server::Proto;
use psd::sim::{Platform, SimTime};
use psd::systems::{SystemConfig, TestBed};
use std::cell::RefCell;
use std::rc::Rc;

const TYPED: &[u8] = b"ls -l /usr/mach/lib\n";

fn main() {
    let platform = Platform::DecStation5000_200;
    println!(
        "remote terminal: {} keystrokes, each echoed by the far host\n",
        TYPED.len()
    );
    println!(
        "{:<30} {:>14} {:>16}",
        "configuration", "per-keystroke", "full command"
    );
    for config in SystemConfig::for_platform(platform) {
        let (per_key, total) = session(config, platform);
        println!(
            "{:<30} {:>14} {:>16}",
            config.label(),
            format!("{per_key}"),
            format!("{total}")
        );
    }
}

fn session(config: SystemConfig, platform: Platform) -> (SimTime, SimTime) {
    let mut bed = TestBed::new(config, platform, 99);

    // The "telnetd" side: echo each byte as it arrives.
    let daemon = bed.hosts[1].spawn_app();
    let lfd = AppLib::socket(&daemon, &mut bed.sim, Proto::Tcp);
    AppLib::bind(&daemon, &mut bed.sim, lfd, 23).unwrap();
    AppLib::listen(&daemon, &mut bed.sim, lfd, 1).unwrap();
    {
        let app = daemon.clone();
        let conn_app = daemon.clone();
        let conn: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                if ev == SockEvent::Readable {
                    let mut buf = [0u8; 64];
                    while let Ok(n) = AppLib::recv(&conn_app, sim, fd, &mut buf) {
                        if n == 0 {
                            break;
                        }
                        let _ = AppLib::send(&conn_app, sim, fd, &buf[..n]);
                    }
                }
            },
        ));
        let listen: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| {
                if ev == SockEvent::Readable {
                    while let Ok(c) = AppLib::accept(&app, sim, fd) {
                        app.borrow_mut().set_event_handler(c, conn.clone());
                        // Interactive sessions disable Nagle so each
                        // keystroke goes out immediately.
                        app.borrow_mut().set_nodelay(c, true);
                    }
                }
            },
        ));
        daemon.borrow_mut().set_event_handler(lfd, listen);
    }

    // The "telnet" side: type a character, wait for its echo, repeat.
    let user = bed.hosts[0].spawn_app();
    let cfd = AppLib::socket(&user, &mut bed.sim, Proto::Tcp);
    let state: Rc<RefCell<(usize, bool)>> = Rc::new(RefCell::new((0, false))); // (echoes, connected)
    {
        let app = user.clone();
        let st = state.clone();
        let handler: FdEventFn = Rc::new(RefCell::new(
            move |sim: &mut psd::sim::Sim, fd: Fd, ev: SockEvent| match ev {
                SockEvent::Connected => {
                    st.borrow_mut().1 = true;
                    app.borrow_mut().set_nodelay(fd, true);
                    let _ = AppLib::send(&app, sim, fd, &TYPED[..1]);
                }
                SockEvent::Readable => {
                    let mut buf = [0u8; 8];
                    while let Ok(n) = AppLib::recv(&app, sim, fd, &mut buf) {
                        if n == 0 {
                            break;
                        }
                        for _ in 0..n {
                            let mut s = st.borrow_mut();
                            s.0 += 1;
                            let next = s.0;
                            drop(s);
                            if next < TYPED.len() {
                                match AppLib::send(&app, sim, fd, &TYPED[next..next + 1]) {
                                    Ok(_) | Err(SocketError::WouldBlock) => {}
                                    Err(e) => panic!("send: {e}"),
                                }
                            }
                        }
                    }
                }
                _ => {}
            },
        ));
        user.borrow_mut().set_event_handler(cfd, handler);
    }
    AppLib::connect(&user, &mut bed.sim, cfd, InetAddr::new(bed.hosts[1].ip, 23)).unwrap();

    // Wait for the connection, then time the typing.
    while !state.borrow().1 {
        let t = bed.sim.now() + SimTime::from_micros(100);
        bed.sim.run_until(t);
        assert!(bed.sim.now() < SimTime::from_secs(30), "connect stalled");
    }
    let start = bed.sim.now();
    while state.borrow().0 < TYPED.len() {
        let t = bed.sim.now() + SimTime::from_micros(100);
        bed.sim.run_until(t);
        assert!(
            bed.sim.now() - start < SimTime::from_secs(60),
            "session stalled at {} echoes",
            state.borrow().0
        );
    }
    let total = bed.sim.now() - start;
    (total / TYPED.len() as u64, total)
}
